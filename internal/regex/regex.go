// Package regex implements the regular-expression calculus used by the
// Shelley behavior inference (paper §3.2):
//
//	r ::= ε | ∅ | f | r·r | r + r | r*
//
// where ε is the empty string, ∅ the empty language, f a single symbol
// (a method label such as "a.open"), r·r concatenation, r+r union, and r*
// the Kleene star.
//
// Expressions are immutable trees built through smart constructors that
// keep them in a light normal form (associativity of · and +, commutativity
// and idempotence of +, annihilation and identity laws for ∅ and ε). The
// normal form makes Brzozowski derivatives (see derivative.go) produce a
// finite state space, which in turn makes equivalence checking decidable
// (see equiv.go).
package regex

import (
	"sort"
	"strings"
)

// Regex is a node of a regular expression over string-labelled symbols.
//
// The zero value of the package-level helpers is not used; construct
// expressions with Empty, Epsilon, Symbol, Concat, Union, and Star.
type Regex interface {
	// String renders the expression in the paper's concrete syntax,
	// parenthesizing only where required.
	String() string

	// precedence is used by String for minimal parenthesization.
	precedence() int

	// key returns a canonical encoding used for hashing and ordering.
	// Two structurally equal expressions have equal keys.
	key() string
}

// The concrete node kinds. They are exported so that callers (e.g. the
// automata package and pretty printers) can pattern-match on expression
// structure.
type (
	// EmptySet is ∅, the language containing no traces.
	EmptySet struct{}

	// EmptyString is ε, the language containing only the empty trace.
	EmptyString struct{}

	// Sym is a single symbol f; its language is {[f]}.
	Sym struct{ Name string }

	// Cat is the concatenation r1·r2·...·rn (n ≥ 2), flattened.
	Cat struct{ Parts []Regex }

	// Alt is the union r1 + r2 + ... + rn (n ≥ 2), flattened, sorted by
	// key, and deduplicated.
	Alt struct{ Parts []Regex }

	// Rep is the Kleene star r*.
	Rep struct{ Inner Regex }
)

var (
	_ Regex = EmptySet{}
	_ Regex = EmptyString{}
	_ Regex = Sym{}
	_ Regex = Cat{}
	_ Regex = Alt{}
	_ Regex = Rep{}
)

var (
	emptySet    = EmptySet{}
	emptyString = EmptyString{}
)

// Empty returns ∅, the empty language.
func Empty() Regex { return emptySet }

// Epsilon returns ε, the language of the empty trace.
func Epsilon() Regex { return emptyString }

// Symbol returns the single-symbol expression f.
func Symbol(name string) Regex { return Sym{Name: name} }

// Symbols builds the concatenation of the given symbol names. It is a
// convenience for writing test expectations: Symbols("a", "b") == a·b.
// With no arguments it returns ε.
func Symbols(names ...string) Regex {
	parts := make([]Regex, len(names))
	for i, n := range names {
		parts[i] = Symbol(n)
	}
	return Concat(parts...)
}

// Concat returns the concatenation r1·...·rn in normal form:
//
//   - any ∅ factor annihilates the whole product,
//   - ε factors are dropped,
//   - nested concatenations are flattened.
//
// Concat() is ε and Concat(r) is r.
func Concat(rs ...Regex) Regex {
	parts := make([]Regex, 0, len(rs))
	for _, r := range rs {
		switch r := r.(type) {
		case EmptySet:
			return emptySet
		case EmptyString:
			// identity: drop.
		case Cat:
			parts = append(parts, r.Parts...)
		default:
			parts = append(parts, r)
		}
	}
	switch len(parts) {
	case 0:
		return emptyString
	case 1:
		return parts[0]
	}
	return Cat{Parts: parts}
}

// Union returns the union r1 + ... + rn in normal form:
//
//   - ∅ summands are dropped,
//   - nested unions are flattened,
//   - duplicate summands are removed,
//   - summands are sorted into a canonical order (so + is commutative
//     and associative up to structural equality).
//
// Union() is ∅ and Union(r) is r.
func Union(rs ...Regex) Regex {
	seen := make(map[string]struct{}, len(rs))
	parts := make([]Regex, 0, len(rs))
	var add func(r Regex)
	add = func(r Regex) {
		switch r := r.(type) {
		case EmptySet:
			// identity of +: drop.
		case Alt:
			for _, p := range r.Parts {
				add(p)
			}
		default:
			k := r.key()
			if _, dup := seen[k]; dup {
				return
			}
			seen[k] = struct{}{}
			parts = append(parts, r)
		}
	}
	for _, r := range rs {
		add(r)
	}
	switch len(parts) {
	case 0:
		return emptySet
	case 1:
		return parts[0]
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].key() < parts[j].key() })
	return Alt{Parts: parts}
}

// Star returns r* in normal form: ∅* = ε* = ε and (r*)* = r*.
func Star(r Regex) Regex {
	switch r := r.(type) {
	case EmptySet, EmptyString:
		return emptyString
	case Rep:
		return r
	}
	return Rep{Inner: r}
}

// Opt returns r + ε, the optional form of r.
func Opt(r Regex) Regex { return Union(r, emptyString) }

// Plus returns r·r*, one-or-more repetitions of r.
func Plus(r Regex) Regex { return Concat(r, Star(r)) }

// Equal reports whether a and b are structurally equal (after the smart
// constructors' normalization). It does NOT decide language equality;
// use Equivalent for that.
func Equal(a, b Regex) bool { return a.key() == b.key() }

// precedence levels: union < concat < star/atom.
const (
	precUnion = iota + 1
	precCat
	precAtom
)

func (EmptySet) precedence() int    { return precAtom }
func (EmptyString) precedence() int { return precAtom }
func (Sym) precedence() int         { return precAtom }
func (Cat) precedence() int         { return precCat }
func (Alt) precedence() int         { return precUnion }
func (Rep) precedence() int         { return precAtom }

func (EmptySet) String() string    { return "0" }
func (EmptyString) String() string { return "1" }
func (s Sym) String() string       { return s.Name }

func (c Cat) String() string {
	var b strings.Builder
	for i, p := range c.Parts {
		if i > 0 {
			b.WriteString(" . ")
		}
		writeChild(&b, p, precCat)
	}
	return b.String()
}

func (a Alt) String() string {
	var b strings.Builder
	for i, p := range a.Parts {
		if i > 0 {
			b.WriteString(" + ")
		}
		writeChild(&b, p, precUnion)
	}
	return b.String()
}

func (r Rep) String() string {
	var b strings.Builder
	// The star binds tighter than · and +, so any non-atom child needs
	// parentheses.
	writeChild(&b, r.Inner, precAtom)
	b.WriteString("*")
	return b.String()
}

func writeChild(b *strings.Builder, child Regex, parent int) {
	if child.precedence() < parent || needsAtomParens(child, parent) {
		b.WriteString("(")
		b.WriteString(child.String())
		b.WriteString(")")
		return
	}
	b.WriteString(child.String())
}

// needsAtomParens forces parentheses around non-atomic children of star.
func needsAtomParens(child Regex, parent int) bool {
	if parent != precAtom {
		return false
	}
	switch child.(type) {
	case Cat, Alt:
		return true
	}
	return false
}

func (EmptySet) key() string    { return "\x00" }
func (EmptyString) key() string { return "\x01" }
func (s Sym) key() string       { return "\x02" + s.Name }

func (c Cat) key() string {
	var b strings.Builder
	b.WriteString("\x03(")
	for _, p := range c.Parts {
		b.WriteString(p.key())
		b.WriteString(",")
	}
	b.WriteString(")")
	return b.String()
}

func (a Alt) key() string {
	var b strings.Builder
	b.WriteString("\x04(")
	for _, p := range a.Parts {
		b.WriteString(p.key())
		b.WriteString(",")
	}
	b.WriteString(")")
	return b.String()
}

func (r Rep) key() string { return "\x05(" + r.Inner.key() + ")" }

// Key exposes the canonical structural encoding of r. It is stable within
// a process and suitable for use as a map key. Two expressions have the
// same Key exactly when Equal reports true.
func Key(r Regex) string { return r.key() }

// Size returns the number of nodes in the expression tree. It is used by
// tests and benchmarks to report the growth of inferred behaviors.
func Size(r Regex) int {
	switch r := r.(type) {
	case EmptySet, EmptyString, Sym:
		return 1
	case Cat:
		n := 1
		for _, p := range r.Parts {
			n += Size(p)
		}
		return n
	case Alt:
		n := 1
		for _, p := range r.Parts {
			n += Size(p)
		}
		return n
	case Rep:
		return 1 + Size(r.Inner)
	}
	return 1
}

// SizeWithin reports whether Size(r) <= max, visiting at most max+1
// nodes: the early exit makes it the right primitive for enforcing a
// regex-size budget on expressions that may be astronomically larger
// than the budget itself (state elimination can square sizes per
// eliminated state). max <= 0 means unlimited and always reports true.
func SizeWithin(r Regex, max int) bool {
	if max <= 0 {
		return true
	}
	left := max
	return sizeWithin(r, &left)
}

func sizeWithin(r Regex, left *int) bool {
	*left--
	if *left < 0 {
		return false
	}
	switch r := r.(type) {
	case Cat:
		for _, p := range r.Parts {
			if !sizeWithin(p, left) {
				return false
			}
		}
	case Alt:
		for _, p := range r.Parts {
			if !sizeWithin(p, left) {
				return false
			}
		}
	case Rep:
		return sizeWithin(r.Inner, left)
	}
	return true
}

// Alphabet returns the set of symbol names occurring in r, sorted.
func Alphabet(r Regex) []string {
	set := make(map[string]struct{})
	collectAlphabet(r, set)
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func collectAlphabet(r Regex, set map[string]struct{}) {
	switch r := r.(type) {
	case Sym:
		set[r.Name] = struct{}{}
	case Cat:
		for _, p := range r.Parts {
			collectAlphabet(p, set)
		}
	case Alt:
		for _, p := range r.Parts {
			collectAlphabet(p, set)
		}
	case Rep:
		collectAlphabet(r.Inner, set)
	}
}

// IsEmptyLanguage reports whether L(r) = ∅, i.e. r denotes no traces at
// all. Thanks to the smart constructors ∅ can only survive normalization
// at the top level or under concatenation with symbols, so a structural
// check suffices for normalized expressions; this function is nevertheless
// written to be correct for arbitrary trees.
func IsEmptyLanguage(r Regex) bool {
	switch r := r.(type) {
	case EmptySet:
		return true
	case EmptyString, Sym, Rep:
		return false
	case Cat:
		for _, p := range r.Parts {
			if IsEmptyLanguage(p) {
				return true
			}
		}
		return false
	case Alt:
		for _, p := range r.Parts {
			if !IsEmptyLanguage(p) {
				return false
			}
		}
		return true
	}
	return false
}

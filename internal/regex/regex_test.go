package regex

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSmartConstructorsNormalize(t *testing.T) {
	a, b, c := Symbol("a"), Symbol("b"), Symbol("c")
	tests := []struct {
		name string
		got  Regex
		want Regex
	}{
		{"concat identity left", Concat(Epsilon(), a), a},
		{"concat identity right", Concat(a, Epsilon()), a},
		{"concat annihilates left", Concat(Empty(), a), Empty()},
		{"concat annihilates right", Concat(a, Empty()), Empty()},
		{"concat annihilates middle", Concat(a, Empty(), b), Empty()},
		{"concat flattens", Concat(Concat(a, b), c), Concat(a, Concat(b, c))},
		{"concat empty arglist is epsilon", Concat(), Epsilon()},
		{"concat singleton", Concat(a), a},
		{"union identity left", Union(Empty(), a), a},
		{"union identity right", Union(a, Empty()), a},
		{"union idempotent", Union(a, a), a},
		{"union commutative", Union(a, b), Union(b, a)},
		{"union associative", Union(Union(a, b), c), Union(a, Union(b, c))},
		{"union flattens and dedups", Union(Union(a, b), Union(b, a)), Union(a, b)},
		{"union empty arglist is empty set", Union(), Empty()},
		{"union singleton", Union(a), a},
		{"star of empty set", Star(Empty()), Epsilon()},
		{"star of epsilon", Star(Epsilon()), Epsilon()},
		{"star of star", Star(Star(a)), Star(a)},
		{"opt", Opt(a), Union(a, Epsilon())},
		{"plus", Plus(a), Concat(a, Star(a))},
		{"symbols helper", Symbols("a", "b"), Concat(a, b)},
		{"symbols helper empty", Symbols(), Epsilon()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !Equal(tt.got, tt.want) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	tests := []struct {
		r    Regex
		want string
	}{
		{Empty(), "0"},
		{Epsilon(), "1"},
		{Symbol("a"), "a"},
		{Symbol("a.open"), "a.open"},
		{Concat(Symbol("a"), Symbol("b")), "a . b"},
		{Union(Symbol("a"), Symbol("b")), "a + b"},
		{Star(Symbol("a")), "a*"},
		{Star(Concat(Symbol("a"), Symbol("b"))), "(a . b)*"},
		{Star(Union(Symbol("a"), Symbol("b"))), "(a + b)*"},
		{Concat(Union(Symbol("a"), Symbol("b")), Symbol("c")), "(a + b) . c"},
		// Canonical union order sorts atoms before composites.
		{Union(Concat(Symbol("a"), Symbol("b")), Symbol("c")), "c + a . b"},
		{
			// Example 3 of the paper, ongoing component, in the raw
			// (paper-verbatim) form that inference produces.
			RawStar(RawCat(Symbol("a"), RawAlt(RawCat(Symbol("b"), Empty()), Symbol("c")))),
			"(a . (b . 0 + c))*",
		},
	}
	for _, tt := range tests {
		t.Run(tt.want, func(t *testing.T) {
			if got := tt.r.String(); got != tt.want {
				t.Fatalf("String() = %q, want %q", got, tt.want)
			}
			back, err := Parse(tt.want)
			if err != nil {
				t.Fatalf("Parse(%q): %v", tt.want, err)
			}
			// Parse normalizes, so raw (paper-verbatim) inputs round-trip
			// up to language equality; normalized inputs round-trip
			// structurally.
			if !Equivalent(back, tt.r) {
				t.Errorf("Parse(String()) = %v, not equivalent to %v", back, tt.r)
			}
			if Equal(Simplify(tt.r), tt.r) && !Equal(back, tt.r) {
				t.Errorf("Parse(String()) = %v, want structural %v", back, tt.r)
			}
		})
	}
}

func TestParseJuxtapositionAndErrors(t *testing.T) {
	r, err := Parse("a b c")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if !Equal(r, Symbols("a", "b", "c")) {
		t.Errorf("juxtaposition: got %v", r)
	}

	for _, bad := range []string{"", "(", "(a", "a +", "+a", "a )", "*", "a ] b"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q): expected error", bad)
		}
	}
}

func TestParseNumericIdentBoundary(t *testing.T) {
	// "0" and "1" are ∅ and ε only when standalone; identifiers may
	// contain digits.
	r := MustParse("open1")
	if !Equal(r, Symbol("open1")) {
		t.Errorf("got %v", r)
	}
	r = MustParse("0 + s1.go")
	if !Equal(r, Symbol("s1.go")) {
		t.Errorf("got %v", r)
	}
}

func TestNullable(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{"0", false},
		{"1", true},
		{"a", false},
		{"a*", true},
		{"a . b", false},
		{"a* . b*", true},
		{"a + 1", true},
		{"a + b", false},
		{"(a . b)* . (c + 1)", true},
	}
	for _, tt := range tests {
		if got := Nullable(MustParse(tt.src)); got != tt.want {
			t.Errorf("Nullable(%s) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestDerivative(t *testing.T) {
	tests := []struct {
		src, by, want string
	}{
		{"a", "a", "1"},
		{"a", "b", "0"},
		{"a . b", "a", "b"},
		{"a . b", "b", "0"},
		{"a + b", "a", "1"},
		{"a*", "a", "a*"},
		{"(a . b)*", "a", "b . (a . b)*"},
		{"a* . b", "b", "1"},
		{"a* . b", "a", "a* . b"},
		{"(a + b)* . c", "c", "1"},
	}
	for _, tt := range tests {
		got := Derivative(MustParse(tt.src), tt.by)
		want := MustParse(tt.want)
		if !Equal(got, want) {
			t.Errorf("Derivative(%s, %s) = %v, want %v", tt.src, tt.by, got, want)
		}
	}
}

func TestMatch(t *testing.T) {
	tests := []struct {
		src   string
		trace []string
		want  bool
	}{
		{"0", nil, false},
		{"1", nil, true},
		{"1", []string{"a"}, false},
		{"a", []string{"a"}, true},
		{"a", []string{"b"}, false},
		{"a . b . c", []string{"a", "b", "c"}, true},
		{"a . b . c", []string{"a", "b"}, false},
		{"(a + b)*", nil, true},
		{"(a + b)*", []string{"a", "b", "b", "a"}, true},
		{"(a + b)*", []string{"a", "c"}, false},
		{"(a . b)* . a", []string{"a", "b", "a", "b", "a"}, true},
		{"(a . b)* . a", []string{"a", "b", "a", "b"}, false},
		// Example 3 of the paper: full inferred behavior.
		{"(a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b", []string{"a", "c", "a", "c"}, true},
		{"(a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b", []string{"a", "c", "a", "b"}, true},
		{"(a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b", []string{"a", "b", "a"}, false},
	}
	for _, tt := range tests {
		if got := Match(MustParse(tt.src), tt.trace); got != tt.want {
			t.Errorf("Match(%s, %v) = %v, want %v", tt.src, tt.trace, got, tt.want)
		}
	}
}

func TestMatchPrefix(t *testing.T) {
	r := MustParse("a . b . c")
	for i, tt := range []struct {
		trace []string
		want  bool
	}{
		{nil, true},
		{[]string{"a"}, true},
		{[]string{"a", "b"}, true},
		{[]string{"a", "b", "c"}, true},
		{[]string{"b"}, false},
		{[]string{"a", "b", "c", "d"}, false},
	} {
		if got := MatchPrefix(r, tt.trace); got != tt.want {
			t.Errorf("case %d: MatchPrefix(%v) = %v, want %v", i, tt.trace, got, tt.want)
		}
	}
}

func TestEnumerate(t *testing.T) {
	got := Enumerate(MustParse("(a + b . c)*"), 3)
	want := [][]string{
		{},
		{"a"},
		{"a", "a"},
		{"b", "c"},
		{"a", "a", "a"},
		{"a", "b", "c"},
		{"b", "c", "a"},
	}
	if len(got) != len(want) {
		t.Fatalf("Enumerate returned %d traces, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if !sameTrace(got[i], want[i]) {
			t.Errorf("Enumerate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEnumerateEmptyAndEpsilon(t *testing.T) {
	if got := Enumerate(Empty(), 5); len(got) != 0 {
		t.Errorf("Enumerate(0) = %v, want empty", got)
	}
	got := Enumerate(Epsilon(), 5)
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("Enumerate(1) = %v, want [[]]", got)
	}
}

func TestCountAtMost(t *testing.T) {
	tests := []struct {
		src    string
		maxLen int
		want   int
	}{
		{"0", 4, 0},
		{"1", 4, 1},
		{"a", 4, 1},
		{"(a + b)*", 2, 7},    // ε, a, b, aa, ab, ba, bb
		{"(a + b)*", 3, 15},   // 1 + 2 + 4 + 8
		{"a* . b . a*", 3, 6}, /* b, ab, ba, aab, aba, baa */
	}
	for _, tt := range tests {
		if got := CountAtMost(MustParse(tt.src), tt.maxLen); got != tt.want {
			t.Errorf("CountAtMost(%s, %d) = %d, want %d", tt.src, tt.maxLen, got, tt.want)
		}
	}
}

func TestCountAtMostAgreesWithEnumerate(t *testing.T) {
	for _, src := range []string{"(a . (b . 0 + c))* . a . b", "(a + b)* . c", "a* . b*", "(a . a)*"} {
		r := MustParse(src)
		for k := 0; k <= 5; k++ {
			if got, want := CountAtMost(r, k), len(Enumerate(r, k)); got != want {
				t.Errorf("%s at %d: CountAtMost = %d, Enumerate len = %d", src, k, got, want)
			}
		}
	}
}

func TestShortestTrace(t *testing.T) {
	tests := []struct {
		src  string
		want []string
		ok   bool
	}{
		{"0", nil, false},
		{"a . 0", nil, false},
		{"1", []string{}, true},
		{"a*", []string{}, true},
		{"a . b + c", []string{"c"}, true},
		{"b + a", []string{"a"}, true}, // lexicographic tie-break
		{"(a . b)* . a . c", []string{"a", "c"}, true},
	}
	for _, tt := range tests {
		got, ok := ShortestTrace(MustParse(tt.src))
		if ok != tt.ok {
			t.Errorf("ShortestTrace(%s) ok = %v, want %v", tt.src, ok, tt.ok)
			continue
		}
		if ok && !sameTrace(got, tt.want) {
			t.Errorf("ShortestTrace(%s) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestEquivalent(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"a", "a", true},
		{"a", "b", false},
		{"(a + b)*", "(a* . b*)*", true},
		{"(a . b)*", "(b . a)*", false},
		{"a . (b + c)", "a . b + a . c", true},
		{"(a*)*", "a*", true},
		{"1 + a . a*", "a*", true},
		{"a . a*", "a* . a", true},
		{"0*", "1", true},
		{"a . 0", "0", true},
		{"(a + 1) . (a + 1)", "1 + a + a . a", true},
		// Strings with at least one 'a': first-a decomposition.
		{"(a + b)* . a . (a + b)*", "b* . a . (a + b)*", true},
		// Ending-in-a ∪ starting-with-a misses e.g. "bab".
		{"(a + b)* . a . (a + b)*", "(a + b)* . a + a . (a + b)*", false},
		{"a*", "a* . b*", false},
	}
	for _, tt := range tests {
		if got := Equivalent(MustParse(tt.a), MustParse(tt.b)); got != tt.want {
			t.Errorf("Equivalent(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestDistinguishReturnsShortestWitness(t *testing.T) {
	w, eq := Distinguish(MustParse("(a . b)*"), MustParse("(b . a)*"))
	if eq {
		t.Fatal("expected languages to differ")
	}
	if !sameTrace(w, []string{"a", "b"}) {
		t.Errorf("witness = %v, want [a b]", w)
	}
	// ε is in one language but not the other.
	w, eq = Distinguish(MustParse("a*"), MustParse("a . a*"))
	if eq {
		t.Fatal("expected languages to differ")
	}
	if len(w) != 0 {
		t.Errorf("witness = %v, want []", w)
	}
}

func TestSubset(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"a", "(a + b)*", true},
		{"(a + b)*", "a", false},
		{"0", "0", true},
		{"0", "a", true},
		{"a . b", "a . (b + c)", true},
		{"a . c", "a . b", false},
		{"(a . b)*", "(a + b)*", true},
	}
	for _, tt := range tests {
		if got := Subset(MustParse(tt.a), MustParse(tt.b)); got != tt.want {
			t.Errorf("Subset(%s, %s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCounterexampleSubset(t *testing.T) {
	ce, ok := CounterexampleSubset(MustParse("a . (b + c)"), MustParse("a . b"))
	if ok {
		t.Fatal("expected inclusion to fail")
	}
	if !sameTrace(ce, []string{"a", "c"}) {
		t.Errorf("counterexample = %v, want [a c]", ce)
	}
}

func TestAlphabet(t *testing.T) {
	r := MustParse("(z + a . m)* . a.open")
	want := []string{"a", "a.open", "m", "z"}
	if got := Alphabet(r); !reflect.DeepEqual(got, want) {
		t.Errorf("Alphabet = %v, want %v", got, want)
	}
}

func TestIsEmptyLanguage(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{"0", true},
		{"1", false},
		{"a", false},
		{"a . 0", true},
		{"a + 0", false},
		{"0*", false},
	}
	for _, tt := range tests {
		if got := IsEmptyLanguage(MustParse(tt.src)); got != tt.want {
			t.Errorf("IsEmptyLanguage(%s) = %v, want %v", tt.src, got, tt.want)
		}
	}
	// Non-normalized trees (constructed directly) must also be handled.
	if !IsEmptyLanguage(Cat{Parts: []Regex{Sym{Name: "a"}, EmptySet{}}}) {
		t.Error("raw Cat with ∅ should be empty")
	}
	if IsEmptyLanguage(Alt{Parts: []Regex{EmptySet{}, Sym{Name: "a"}}}) {
		t.Error("raw Alt with symbol should be non-empty")
	}
}

func TestSize(t *testing.T) {
	if got := Size(MustParse("(a . b)* + 1")); got != 6 {
		t.Errorf("Size = %d, want 6", got)
	}
	if got := Size(Empty()); got != 1 {
		t.Errorf("Size(0) = %d, want 1", got)
	}
}

func TestKeyDistinguishesStructure(t *testing.T) {
	pairs := [][2]Regex{
		{Symbols("a", "b"), Union(Symbol("a"), Symbol("b"))},
		{Symbol("a"), Star(Symbol("a"))},
		{Empty(), Epsilon()},
		{Symbol("ab"), Symbols("a", "b")},
	}
	for _, p := range pairs {
		if Key(p[0]) == Key(p[1]) {
			t.Errorf("Key collision between %v and %v", p[0], p[1])
		}
	}
}

// randomRegex builds a random expression over a small alphabet; shared
// with the property tests below.
func randomRegex(r *rand.Rand, depth int) Regex {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Epsilon()
		case 1:
			return Empty()
		default:
			return Symbol(string(rune('a' + r.Intn(3))))
		}
	}
	switch r.Intn(6) {
	case 0:
		return Symbol(string(rune('a' + r.Intn(3))))
	case 1, 2:
		return Concat(randomRegex(r, depth-1), randomRegex(r, depth-1))
	case 3, 4:
		return Union(randomRegex(r, depth-1), randomRegex(r, depth-1))
	default:
		return Star(randomRegex(r, depth-1))
	}
}

type regexValue struct{ r Regex }

func (regexValue) Generate(r *rand.Rand, size int) reflect.Value {
	depth := 3
	if size < 20 {
		depth = 2
	}
	return reflect.ValueOf(regexValue{r: randomRegex(r, depth)})
}

func TestQuickMatchAgreesWithEnumerate(t *testing.T) {
	// Every enumerated trace must match, and matching must agree with
	// membership in the enumeration for all traces up to the bound.
	cfg := &quick.Config{MaxCount: 200}
	f := func(v regexValue) bool {
		const k = 4
		enum := Enumerate(v.r, k)
		set := TraceSet(enum)
		for _, tr := range enum {
			if !Match(v.r, tr) {
				return false
			}
		}
		// All traces over the alphabet up to length 2 that are not in the
		// enumeration must not match.
		for _, tr := range allTraces(Alphabet(v.r), 2) {
			_, in := set[TraceKey(tr)]
			if Match(v.r, tr) != in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDerivativeResidual(t *testing.T) {
	// l ∈ L(∂f r) ⇔ f·l ∈ L(r)
	cfg := &quick.Config{MaxCount: 200}
	f := func(v regexValue) bool {
		alpha := Alphabet(v.r)
		if len(alpha) == 0 {
			return true
		}
		sym := alpha[0]
		d := Derivative(v.r, sym)
		for _, tr := range allTraces(alpha, 3) {
			if Match(d, tr) != Match(v.r, append([]string{sym}, tr...)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickEquivalentIsReflexiveUnderRewrites(t *testing.T) {
	// Language-preserving rewrites must be judged equivalent.
	cfg := &quick.Config{MaxCount: 150}
	f := func(v regexValue, w regexValue) bool {
		a, b := v.r, w.r
		if !Equivalent(Concat(a, b), Concat(a, b)) {
			return false
		}
		// Distribution: a·(b + c) over a fresh c.
		c := Symbol("z")
		if !Equivalent(Concat(a, Union(b, c)), Union(Concat(a, b), Concat(a, c))) {
			return false
		}
		// Star unrolling: a* = 1 + a·a*.
		if !Equivalent(Star(a), Union(Epsilon(), Concat(a, Star(a)))) {
			return false
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDistinguishWitnessIsValid(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(v regexValue, w regexValue) bool {
		witness, eq := Distinguish(v.r, w.r)
		if eq {
			// Spot-check agreement on short traces.
			alpha := unionAlphabet(v.r, w.r)
			for _, tr := range allTraces(alpha, 3) {
				if Match(v.r, tr) != Match(w.r, tr) {
					return false
				}
			}
			return true
		}
		return Match(v.r, witness) != Match(w.r, witness)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// allTraces returns every trace over the alphabet with length ≤ maxLen.
func allTraces(alphabet []string, maxLen int) [][]string {
	out := [][]string{{}}
	frontier := [][]string{{}}
	for i := 0; i < maxLen; i++ {
		var next [][]string
		for _, tr := range frontier {
			for _, f := range alphabet {
				ext := append(append([]string{}, tr...), f)
				next = append(next, ext)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

func sameTrace(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package server

import (
	"math/rand"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

// admission is the per-client fairness gate in front of the batch
// machinery. The worker pool bounds total concurrency; admission
// bounds who gets to occupy it: every batch (sync stream or async job)
// is admitted or refused as a whole, charged against its client's
// in-flight share — a sync batch for its full item count, an async job
// for its peak pool occupancy (see handleJobSubmit) — so one noisy
// client replaying thousand-item batches saturates its own share and
// starts drawing 429s while other clients' batches keep flowing into
// the pool untouched.
//
// Clients are keyed by the X-Shelley-Client token when they send one,
// falling back to the remote host — tokens let fleets behind one NAT
// or proxy get separate shares, and let one logical tenant spread over
// many connections share a single budget.
type admission struct {
	mu       sync.Mutex
	inflight map[string]int
	total    int

	// maxClient bounds one client's in-flight items (429 beyond);
	// maxTotal bounds everyone's (503 beyond — the daemon itself is
	// the bottleneck, not this client).
	maxClient int
	maxTotal  int

	rnd *rand.Rand

	// rejected and inflightGauge are the instance's metric hooks —
	// injected rather than hardwired so the batch and ingest admission
	// instances report into distinct metric families.
	rejected      *atomic.Uint64
	inflightGauge *atomic.Int64
}

func newAdmission(maxClient, maxTotal int, rejected *atomic.Uint64, inflightGauge *atomic.Int64) *admission {
	return &admission{
		inflight:      make(map[string]int),
		maxClient:     maxClient,
		maxTotal:      maxTotal,
		rnd:           rand.New(rand.NewSource(rand.Int63())),
		rejected:      rejected,
		inflightGauge: inflightGauge,
	}
}

// admit charges n items to key. On success it returns release (call
// exactly once, after the batch's last record) and status 0. On
// refusal it returns the status to answer — 429 per-client or 503
// global, each with a jittered Retry-After hint in seconds, or a
// terminal 413 (retryAfter 0, no hint) for a charge that could never
// be admitted no matter how long the client waits.
func (a *admission) admit(key string, n int) (release func(), status, retryAfter int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	// A charge larger than the whole global window (or the per-client
	// share, which every admission must also fit inside) is never
	// admissible: the windows are empty at their largest, so a retryable
	// refusal with a Retry-After would send a compliant client into a
	// loop that cannot succeed. Answer terminally instead.
	if n > a.maxTotal || n > a.maxClient {
		a.rejected.Add(1)
		return nil, http.StatusRequestEntityTooLarge, 0
	}
	if a.total+n > a.maxTotal {
		a.rejected.Add(1)
		return nil, http.StatusServiceUnavailable, a.backoffLocked(2)
	}
	if a.inflight[key]+n > a.maxClient {
		a.rejected.Add(1)
		return nil, http.StatusTooManyRequests, a.backoffLocked(1)
	}
	a.inflight[key] += n
	a.total += n
	a.inflightGauge.Add(int64(n))
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inflight[key] -= n
			if a.inflight[key] <= 0 {
				delete(a.inflight, key)
			}
			a.total -= n
			a.mu.Unlock()
			a.inflightGauge.Add(-int64(n))
		})
	}, 0, 0
}

// backoffLocked computes a Retry-After hint: base seconds scaled by
// current occupancy, plus uniform jitter so a fleet of refused clients
// spreads its retries instead of stampeding back in lockstep.
func (a *admission) backoffLocked(base int) int {
	load := 0
	if a.maxTotal > 0 {
		load = 2 * a.total / a.maxTotal // 0..2 as the window fills
	}
	return base + load + a.rnd.Intn(2*base+1)
}

// clientKey identifies the requester for admission accounting.
func clientKey(r *http.Request) string {
	if tok := r.Header.Get("X-Shelley-Client"); tok != "" {
		return "token:" + tok
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return "addr:" + r.RemoteAddr
	}
	return "addr:" + host
}

package server

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
)

// TestAdmitNeverAdmissibleIsTerminal pins the admission taxonomy: a
// charge that can never fit — larger than the global window or the
// per-client share even when both are empty — answers a terminal 413
// with no Retry-After hint, while ordinary over-load refusals stay
// retryable 429/503 with a hint.
func TestAdmitNeverAdmissibleIsTerminal(t *testing.T) {
	var rejected atomic.Uint64
	var gauge atomic.Int64
	a := newAdmission(4, 8, &rejected, &gauge)

	release, status, retryAfter := a.admit("c", 9) // > maxTotal
	if release != nil || status != http.StatusRequestEntityTooLarge || retryAfter != 0 {
		t.Fatalf("n>maxTotal: release=%v status=%d retryAfter=%d, want nil/413/0", release != nil, status, retryAfter)
	}
	release, status, retryAfter = a.admit("c", 5) // > maxClient, <= maxTotal
	if release != nil || status != http.StatusRequestEntityTooLarge || retryAfter != 0 {
		t.Fatalf("n>maxClient: release=%v status=%d retryAfter=%d, want nil/413/0", release != nil, status, retryAfter)
	}
	if got := rejected.Load(); got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
	if got := gauge.Load(); got != 0 {
		t.Fatalf("inflight gauge = %d after terminal refusals, want 0", got)
	}

	// An admissible charge refused only by current load keeps the
	// retryable contract: 429 per-client with a positive hint.
	rel, status, _ := a.admit("c", 4)
	if status != 0 {
		t.Fatalf("admissible charge refused with %d", status)
	}
	if _, status, retryAfter = a.admit("c", 4); status != http.StatusTooManyRequests || retryAfter < 1 {
		t.Fatalf("share full: status=%d retryAfter=%d, want 429 with hint >= 1", status, retryAfter)
	}
	// And further clients squeezed by the global window get 503 for a
	// charge that would fit an empty window.
	rel2, status, _ := a.admit("d", 4)
	if status != 0 {
		t.Fatalf("second client's admissible charge refused with %d", status)
	}
	if _, status, retryAfter = a.admit("e", 1); status != http.StatusServiceUnavailable || retryAfter < 1 {
		t.Fatalf("window full: status=%d retryAfter=%d, want 503 with hint >= 1", status, retryAfter)
	}
	rel()
	rel2()
}

// TestNeverAdmissibleBatchDoesNotRetry drives the whole trail a
// compliant retrying client follows: a batch bigger than the global
// admission window (but inside the synchronous item limit) used to get
// a retryable 503 whose Retry-After could never succeed; it must now
// get a terminal 413 that client.WithRetry does not loop on — exactly
// one attempt reaches the daemon.
func TestNeverAdmissibleBatchDoesNotRetry(t *testing.T) {
	srv, cl := startServer(t, Config{
		Workers: 2, MaxBatchItems: 64, MaxClientItems: 32, MaxBatchInflight: 8,
	})
	bcl := client.New("http://"+srv.Addr(),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond}))

	items := make([]client.BatchItem, 16) // > MaxBatchInflight, < MaxBatchItems
	for i := range items {
		items[i] = client.BatchItem{Fingerprint: "sha256:deadbeef"}
	}
	_, err := bcl.CheckBatch(context.Background(), client.BatchRequest{Items: items})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("never-admissible batch: %v, want 413", err)
	}
	if apiErr.RetryAfter != 0 {
		t.Fatalf("413 carried Retry-After %v; a terminal refusal must not hint at retrying", apiErr.RetryAfter)
	}
	if apiErr.Temporary() {
		t.Fatal("413 must not be Temporary — WithRetry would loop on it")
	}

	// The retrying client made exactly one attempt: one admission
	// rejection, not MaxAttempts of them.
	v, ok, err := cl.MetricValue(context.Background(), "shelleyd_batch_admission_rejected_total")
	if err != nil || !ok {
		t.Fatalf("reading rejection counter: ok=%v err=%v", ok, err)
	}
	if v != 1 {
		t.Fatalf("admission rejections = %v, want exactly 1 (the client looped)", v)
	}
}

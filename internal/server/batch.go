package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/obs"
)

// handleCheckBatch is POST /v1/check-batch: many check items in, one
// NDJSON record per item out, streamed (chunked, flushed per record)
// in completion order so a CI fleet or editor consumes results as each
// class finishes instead of after the slowest. Admission control runs
// before the header is committed: a refused batch is a clean 429/503
// with a jittered Retry-After. Once the 200 header is flushed the
// status code is spent, so every later failure — per-item errors, a
// canceled client, even a daemon drain — is representable only as a
// record; the terminal Done record is the client's proof the stream
// ended on purpose rather than on a cut wire.
func (s *Server) handleCheckBatch(w http.ResponseWriter, r *http.Request) int {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "2")
		return s.writeError(w, http.StatusServiceUnavailable, "daemon is draining")
	}
	var req client.BatchRequest
	if err := decodeBody(w, r, s.cfg.MaxBatchBytes, &req); err != nil {
		return s.writeError(w, http.StatusBadRequest, err.Error())
	}
	if len(req.Items) == 0 {
		return s.writeError(w, http.StatusBadRequest, "batch needs at least one item")
	}
	if len(req.Items) > s.cfg.MaxBatchItems {
		return s.writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf(
			"batch of %d exceeds the synchronous window of %d; submit it as an async job via POST /v1/jobs",
			len(req.Items), s.cfg.MaxBatchItems))
	}
	release, status, retryAfter := s.adm.admit(clientKey(r), len(req.Items))
	if status != 0 {
		msg := "per-client batch share exhausted; retry after backoff"
		switch status {
		case http.StatusServiceUnavailable:
			msg = "batch window saturated; retry after backoff"
		case http.StatusRequestEntityTooLarge:
			// Never admissible at any load: no Retry-After — retrying
			// cannot succeed. Oversized batches belong in /v1/jobs.
			msg = fmt.Sprintf("batch of %d items exceeds the admission window and can never be admitted; submit it as an async job via POST /v1/jobs", len(req.Items))
		}
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		}
		return s.writeError(w, status, msg)
	}
	defer release()
	if !s.addSubmitter() {
		w.Header().Set("Retry-After", "2")
		return s.writeError(w, http.StatusServiceUnavailable, "daemon is draining")
	}
	defer s.submitters.Done()
	s.met.batchItems.Add(uint64(len(req.Items)))

	// The stream runs under the request context merged with the
	// server's drain context: http.Server.Shutdown never cancels
	// r.Context(), so the drain arm is what unwinds a handler blocked
	// in a backpressure send when a shutdown budget expires — before
	// the pool closes its queue. The drain cause is preserved so the
	// overtaken items' records say the daemon drained, not that the
	// client hung up.
	ctx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stop := context.AfterFunc(s.drainCtx, func() { cancel(context.Cause(s.drainCtx)) })
	defer stop()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	flush()
	s.runBatch(ctx, req.Items, func(rec client.BatchRecord, stall bool) {
		s.writeRecord(w, rec)
		if stall {
			flush()
		}
	})
	return http.StatusOK
}

// writeRecord emits one NDJSON line with a single Write call, so
// records from interleaved streams can never corrupt each other's
// framing. Post-header write failures are counted, not surfaced — the
// client is gone and its context cancellation is already winding the
// batch down.
func (s *Server) writeRecord(w http.ResponseWriter, rec client.BatchRecord) {
	line, ok := appendRecord(make([]byte, 0, 64+len(rec.Check)+len(rec.Error)+len(rec.ID)), rec)
	if !ok {
		var err error
		line, err = json.Marshal(rec)
		if err != nil {
			// Unreachable for well-formed records (Check bytes come
			// from our own encoder), but a record must never kill the
			// stream.
			line, _ = json.Marshal(client.BatchRecord{
				Index: rec.Index, Status: http.StatusInternalServerError,
				Error: "encoding record: " + err.Error(),
			})
		}
	}
	if _, err := w.Write(append(line, '\n')); err != nil {
		s.met.writeErrors.Add(1)
	}
}

// appendRecord is the hot-path encoder of a batch record: it appends
// the exact bytes json.Marshal(rec) would produce, without running the
// reflection encoder or re-compacting the embedded Check body (which
// is already compact — it comes from our own json.Marshal). On a warm
// stream the record wrapper is most of the encoding work, so this is a
// direct throughput lever. Returns ok=false — caller falls back to
// json.Marshal — when a string field needs escaping the fast path does
// not implement. TestAppendRecordMatchesJSONMarshal pins the
// byte-for-byte agreement.
func appendRecord(b []byte, rec client.BatchRecord) ([]byte, bool) {
	var ok bool
	b = append(b, `{"index":`...)
	b = strconv.AppendInt(b, int64(rec.Index), 10)
	if rec.ID != "" {
		b = append(b, `,"id":`...)
		if b, ok = appendJSONString(b, rec.ID); !ok {
			return nil, false
		}
	}
	if rec.Status != 0 {
		b = append(b, `,"status":`...)
		b = strconv.AppendInt(b, int64(rec.Status), 10)
	}
	if len(rec.Check) != 0 {
		b = append(b, `,"check":`...)
		b = append(b, rec.Check...)
	}
	if rec.Error != "" {
		b = append(b, `,"error":`...)
		if b, ok = appendJSONString(b, rec.Error); !ok {
			return nil, false
		}
	}
	if rec.Done {
		b = append(b, `,"done":true`...)
	}
	if rec.Total != 0 {
		b = append(b, `,"total":`...)
		b = strconv.AppendInt(b, int64(rec.Total), 10)
	}
	if rec.Succeeded != 0 {
		b = append(b, `,"succeeded":`...)
		b = strconv.AppendInt(b, int64(rec.Succeeded), 10)
	}
	if rec.Failed != 0 {
		b = append(b, `,"failed":`...)
		b = strconv.AppendInt(b, int64(rec.Failed), 10)
	}
	return append(b, '}'), true
}

// appendJSONString appends s as a JSON string when it needs no
// escaping under encoding/json's rules (which also escape <, >, & for
// HTML safety); ok=false sends the caller to the reflection encoder.
func appendJSONString(b []byte, s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return nil, false
		}
	}
	b = append(b, '"')
	b = append(b, s...)
	return append(b, '"'), true
}

// runBatch verifies items with bounded pool fan-out, calling emit with
// one record per item in completion order and finally with the
// terminal summary record. emit runs on the calling goroutine — for
// the streaming handler that means each record is on the wire before
// the next sequential item starts, so a cancellation observed during a
// write deterministically overtakes every later item. emit's stall
// flag is true when no further record is already queued — the flush
// hint: a stalling stream flushes every record immediately, while a
// burst of back-to-back completions rides one flush, which is most of
// the batch endpoint's throughput edge over per-class requests. The
// caller owns ctx: cancellation stops admission of further items
// (already-launched work resolves through the coalescer for any
// remaining waiters) and marks the rest canceled.
func (s *Server) runBatch(ctx context.Context, items []client.BatchItem, emit func(rec client.BatchRecord, stall bool)) {
	var succeeded, failed int
	record := func(rec client.BatchRecord, stall bool) {
		if rec.Status == http.StatusOK {
			succeeded++
		} else {
			failed++
			s.met.batchItemErrors.Add(1)
		}
		emit(rec, stall)
	}
	if s.cfg.BatchWindow <= 1 {
		// Strictly sequential: records are emitted in item order, which
		// is what pins the wire format byte-for-byte in the golden
		// tests and keeps single-worker daemons fair. A record is a
		// stall point unless the next item is an instant body-cache hit
		// (or this is the last item, whose flush rides the terminal
		// record) — the stream still flushes before anything that might
		// pause, but an all-warm batch coalesces into a couple of
		// writes instead of one syscall per record.
		for i, it := range items {
			rec := s.batchItem(ctx, i, it)
			record(rec, i+1 < len(items) && !s.instantItem(items[i+1]))
		}
	} else {
		// Full buffering means producers never block handing over a
		// record, and len(recs) is an honest "more already waiting"
		// signal for the flush hint.
		recs := make(chan client.BatchRecord, len(items))
		sem := make(chan struct{}, s.cfg.BatchWindow)
		var wg sync.WaitGroup
		for i, it := range items {
			wg.Add(1)
			go func(i int, it client.BatchItem) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				recs <- s.batchItem(ctx, i, it)
			}(i, it)
		}
		go func() { wg.Wait(); close(recs) }()
		for rec := range recs {
			record(rec, len(recs) == 0)
		}
	}
	term := client.BatchRecord{Done: true, Total: len(items), Succeeded: succeeded, Failed: failed}
	if ctx.Err() != nil {
		s.met.batchCanceled.Add(1)
		// Cause over Err: a drain-expiry cancellation names errDraining
		// instead of the generic "context canceled".
		term.Error = "batch canceled: " + context.Cause(ctx).Error()
	}
	emit(term, true)
}

// instantItem reports whether it will resolve without pausing the
// stream: a fingerprint-only item whose response body is already
// memoized on its resident module. Conservative by construction — any
// item carrying source (hashing, maybe loading) or missing its cache
// entry counts as slow, so the flush hint errs toward flushing.
func (s *Server) instantItem(it client.BatchItem) bool {
	if it.Source != "" || it.Fingerprint == "" {
		return false
	}
	_, ok := s.modules.cachedBody(it.Fingerprint, checkKey(it.Fingerprint, it.Class, it.Precise))
	return ok
}

// batchItem verifies one item and returns its record. It mirrors
// handleCheck's request handling — same validation, same error
// mapping, same coalescing key, same pooled closure — so a batch item
// and a single /v1/check of the same work are byte-identical and share
// one in-flight execution. The one divergence is submission
// discipline: items block on a full queue (backpressure) instead of
// shedding.
func (s *Server) batchItem(ctx context.Context, idx int, it client.BatchItem) client.BatchRecord {
	rec := client.BatchRecord{Index: idx, ID: it.ID}
	fail := func(status int, msg string) client.BatchRecord {
		rec.Status, rec.Error = status, msg
		return rec
	}
	if ctx.Err() != nil {
		return s.canceledRecord(rec, ctx)
	}
	ctx, span := obs.Start(ctx, "batch.item", obs.Int("index", idx))
	defer span.End()
	if it.Source == "" && it.Fingerprint == "" {
		return fail(http.StatusBadRequest, "item needs source or fingerprint")
	}
	fp := it.Fingerprint
	if it.Source != "" {
		if int64(len(it.Source)) > s.cfg.MaxSourceBytes {
			return fail(http.StatusRequestEntityTooLarge, "item source exceeds the per-source byte limit")
		}
		computed := client.Fingerprint(it.Source)
		if fp != "" && fp != computed {
			return fail(http.StatusBadRequest, "fingerprint does not match source")
		}
		fp = computed
	}
	key := checkKey(fp, it.Class, it.Precise)
	if body, ok := s.modules.cachedBody(fp, key); ok {
		// Same fast path as handleCheck: a memoized success is the
		// pooled path's exact bytes, served without a pool round-trip —
		// and before module resolution, which is sound because bodies
		// are stored only for requests that answered 200.
		s.met.bodyCacheHits.Add(1)
		rec.Status = http.StatusOK
		rec.Check = json.RawMessage(body)
		return rec
	}
	if body, ok := s.storeBody(key); ok {
		// And one layer down: the durable store lets a restarted daemon
		// answer fingerprint-only batch items without residency.
		s.met.storeBodyHits.Add(1)
		s.modules.storeBody(fp, key, body)
		rec.Status = http.StatusOK
		rec.Check = json.RawMessage(body)
		return rec
	}
	mod, err := s.modules.get(ctx, fp, it.Source)
	switch {
	case errors.Is(err, errNotResident):
		return fail(http.StatusNotFound, "module "+fp+" not resident; re-POST its source")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.met.timeoutWait.Add(1)
		return s.canceledRecord(rec, ctx)
	case err != nil:
		return fail(http.StatusUnprocessableEntity, err.Error())
	}
	if it.Class != "" {
		if _, ok := mod.Class(it.Class); !ok {
			return fail(http.StatusNotFound, "class "+it.Class+" not found")
		}
	}
	c, _ := s.launch(ctx, key, true, s.checkFn(mod, fp, it.Class, it.Precise))
	select {
	case <-c.done:
		rec.Status = c.status
		if c.status == http.StatusOK {
			rec.Check = json.RawMessage(c.body)
			return rec
		}
		var e client.ErrorResponse
		if json.Unmarshal(c.body, &e) == nil && e.Error != "" {
			rec.Error = e.Error
		} else {
			rec.Error = string(c.body)
		}
		return rec
	case <-ctx.Done():
		// This item's stream went away; the shared computation
		// continues for any coalesced waiters.
		s.met.timeoutWait.Add(1)
		return s.canceledRecord(rec, ctx)
	}
}

// canceledRecord fills rec for an item overtaken by its stream's end:
// 499 (client closed request) for cancellation, 504 for a deadline,
// 503 when a drain's budget expired first.
func (s *Server) canceledRecord(rec client.BatchRecord, ctx context.Context) client.BatchRecord {
	switch {
	case errors.Is(ctx.Err(), context.DeadlineExceeded):
		rec.Status = http.StatusGatewayTimeout
		rec.Error = "deadline exceeded before this item completed"
	case errors.Is(context.Cause(ctx), errDraining):
		rec.Status = http.StatusServiceUnavailable
		rec.Error = "daemon drained before this item completed"
	default:
		rec.Status = 499 // client closed request (nginx convention)
		rec.Error = "client canceled before this item completed"
	}
	return rec
}

package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// FuzzBatchRequest throws hostile bodies at the batch endpoints:
// malformed, truncated, and key-duplicated JSON, absurd fingerprints,
// and occasionally a well-formed batch. The invariants are liveness
// ones — the daemon never panics (ServeHTTP returning non-200 is fine,
// not returning is not), always answers a complete response, and never
// wedges the worker pool: after each input the goroutine count must
// come back to the baseline band, so no input can strand a runner or a
// worker. Runs in the CI fuzz-smoke job.
func FuzzBatchRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"items":[{"source":"@sys\nclass C:\n    @op_initial_final\n    def a(self):\n        return []\n"}]}`),
		[]byte(`{"items":[]}`),
		[]byte(`{"items":null}`),
		[]byte(`{"items":[{}]}`),
		[]byte(`{"items":[{"fingerprint":"sha256:00"},{"fingerprint":"sha256:00"},{"fingerprint":"sha256:00"}]}`),
		[]byte(`{"items":[{"fingerprint":"sha256:` + strings.Repeat("ff", 4096) + `"}]}`),
		[]byte("{\"items\":[{\"fingerprint\":\"sha256:\x00\x01\x02\"}]}"),
		[]byte(`{"items":[{"source":"x","fingerprint":"sha256:mismatch"}]}`),
		[]byte(`{"items":[{"source":"x`), // truncated mid-string
		[]byte(`{"items":[{"source":"x"}],"items":[{"source":"y"}]}`), // duplicated key
		[]byte(`{"items":[{"id":"` + strings.Repeat("i", 1<<12) + `","class":"` + strings.Repeat("C", 1<<10) + `"}]}`),
		[]byte(`[[[[[[[[{"items":1}]]]]]]]]`),
		[]byte("\x00\xff\xfe\xfd"),
		{},
	}
	for _, s := range seeds {
		f.Add(s)
	}

	srv := New(Config{
		Workers: 2, QueueDepth: 8,
		MaxBatchItems: 8, MaxJobItems: 8, MaxJobs: 4,
		RequestTimeout: 500 * time.Millisecond,
		Limits:         tightLimits(),
	})
	h := srv.Handler()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, path := range []string{"/v1/check-batch", "/v1/jobs"} {
			req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(data))
			req.Header.Set("Content-Type", "application/json")
			rr := httptest.NewRecorder()
			h.ServeHTTP(rr, req)
			if rr.Code == http.StatusOK && path == "/v1/check-batch" {
				// A 200 stream must be complete: its last line is the
				// terminal record, not a truncation.
				body := bytes.TrimRight(rr.Body.Bytes(), "\n")
				lines := bytes.Split(body, []byte("\n"))
				if last := lines[len(lines)-1]; !bytes.Contains(last, []byte(`"done":true`)) {
					t.Fatalf("batch stream ended without terminal record:\n%s", rr.Body.String())
				}
			}
		}
		// No input may wedge the pool or strand a job runner. Async
		// runners finish on their own (tight budget, short deadline), so
		// the count must return to the baseline band.
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > baseline+32 {
			if time.Now().After(deadline) {
				t.Fatalf("goroutines = %d, baseline %d: input wedged the pool", runtime.NumGoroutine(), baseline)
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/shelley-go/shelley/client"
)

// Golden NDJSON wire-format tests: one file per scenario pinning the
// exact bytes a /v1/check-batch stream puts on the wire — record
// field order, status codes, error texts, terminal summary. Servers are
// configured Workers:1 BatchWindow:1, which makes record order strictly
// the request's item order. Regenerate with:
//
//	go test ./internal/server -run TestBatchGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func assertBatchGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("..", "..", "testdata", "golden", "batch", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// runGoldenBatch drives the handler directly through a recorder (no
// sockets, no scheduler in the byte path) and returns the raw NDJSON.
func runGoldenBatch(t *testing.T, srv *Server, items []client.BatchItem) []byte {
	t.Helper()
	body, err := json.Marshal(client.BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/check-batch", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	resp := w.Result()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	return w.Body.Bytes()
}

// TestBatchGoldenMixed pins the everyday stream: a source miss, a
// fingerprint hit of the now-resident module, and the per-item request
// errors, closed by the summary.
func TestBatchGoldenMixed(t *testing.T) {
	srv := New(Config{Workers: 1, BatchWindow: 1})
	defer srv.Shutdown(context.Background())
	valve := readTestdata(t, "valve.py")
	got := runGoldenBatch(t, srv, []client.BatchItem{
		{ID: "load", Source: valve},
		{ID: "hit", Fingerprint: client.Fingerprint(valve)},
		{ID: "empty"},
		{ID: "ghost", Fingerprint: "sha256:0000000000000000000000000000000000000000000000000000000000000000"},
		{ID: "noclass", Source: valve, Class: "NoSuchClass"},
	})
	assertBatchGolden(t, "mixed.ndjson", got)
}

// TestBatchGoldenBudget pins the mid-batch budget refusal: the
// pathological item's 422 record sits between two clean records and
// the batch completes.
func TestBatchGoldenBudget(t *testing.T) {
	srv := New(Config{Workers: 1, BatchWindow: 1, Limits: tightLimits()})
	defer srv.Shutdown(context.Background())
	valve := readTestdata(t, "valve.py")
	got := runGoldenBatch(t, srv, []client.BatchItem{
		{ID: "before", Source: valve},
		{ID: "blowup", Source: readTestdata(t, "pathological/detblow.py")},
		{ID: "after", Fingerprint: client.Fingerprint(valve)},
	})
	assertBatchGolden(t, "budget.ndjson", got)
}

// cancelingRecorder cancels the request context the moment the first
// record hits the wire, modeling a client that hangs up after one
// result. With a sequential window the remaining items then resolve as
// 499 records at the loop head — fully deterministic bytes.
type cancelingRecorder struct {
	*httptest.ResponseRecorder
	cancel context.CancelFunc
	writes int
}

func (w *cancelingRecorder) Write(b []byte) (int, error) {
	n, err := w.ResponseRecorder.Write(b)
	w.writes++
	if w.writes == 1 {
		w.cancel()
	}
	return n, err
}

// TestBatchGoldenCanceled pins the canceled-client stream: one real
// record, 499 records for the overtaken items, and a terminal record
// carrying the cancellation.
func TestBatchGoldenCanceled(t *testing.T) {
	srv := New(Config{Workers: 1, BatchWindow: 1})
	defer srv.Shutdown(context.Background())
	valve := readTestdata(t, "valve.py")
	body, err := json.Marshal(client.BatchRequest{Items: []client.BatchItem{
		{ID: "served", Source: valve},
		{ID: "late", Fingerprint: client.Fingerprint(valve)},
		{ID: "later", Source: readTestdata(t, "goodsector.py")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/check-batch", bytes.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	w := &cancelingRecorder{ResponseRecorder: httptest.NewRecorder(), cancel: cancel}
	srv.Handler().ServeHTTP(w, req)
	assertBatchGolden(t, "canceled.ndjson", w.Body.Bytes())
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
)

// waitGauge polls /metrics until name is exactly want (waitMetric's >=
// cannot express "gauge back to zero").
func waitGauge(t *testing.T, cl *client.Client, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		text, err := cl.Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := client.ParseMetric(text, name); ok && v == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("metric %s never settled at %v", name, want)
}

// checkBody fetches the raw /v1/check response body for an item — the
// ground truth a batch record's Check field must match byte for byte.
func checkBody(t *testing.T, addr string, req client.CheckRequest) []byte {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post("http://"+addr+"/v1/check", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/check = %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// TestBatchStreamsIncrementally is the tentpole's streaming proof: the
// first record must reach the client while a later item is still
// executing. The job hook blocks the second item's pooled job until the
// test has consumed the first record off the wire, so a buffered
// (non-incremental) implementation would deadlock rather than pass.
func TestBatchStreamsIncrementally(t *testing.T) {
	release := make(chan struct{})
	var jobs atomic.Int64
	srv, _ := startServer(t, Config{
		Workers: 1, BatchWindow: 1,
		jobHook: func() {
			if jobs.Add(1) == 2 {
				<-release
			}
		},
	})
	cl := client.New("http://" + srv.Addr())

	stream, err := cl.CheckBatch(context.Background(), client.BatchRequest{Items: []client.BatchItem{
		{ID: "first", Source: syntheticSource(1, "IncA")},
		{ID: "second", Source: syntheticSource(1, "IncB")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	rec, err := stream.Next()
	if err != nil {
		t.Fatalf("first record: %v", err)
	}
	if rec.ID != "first" || rec.Status != http.StatusOK {
		t.Fatalf("first record = %+v", rec)
	}
	// The first record is in hand while item two is still blocked at
	// the barrier: the stream is incremental. Release and drain.
	close(release)
	rec, err = stream.Next()
	if err != nil || rec.ID != "second" || rec.Status != http.StatusOK {
		t.Fatalf("second record = %+v, %v", rec, err)
	}
	if _, err := stream.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want io.EOF after terminal record, got %v", err)
	}
	sum := stream.Summary()
	if sum == nil || !sum.Done || sum.Total != 2 || sum.Succeeded != 2 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
}

// TestBatchRecordErrorsDontFailBatch pins the per-item error surface:
// invalid items produce non-200 records with the same status codes the
// single-shot endpoints answer, the stream keeps flowing, and the
// terminal record tallies them.
func TestBatchRecordErrorsDontFailBatch(t *testing.T) {
	srv, cl := startServer(t, Config{Workers: 2, MaxSourceBytes: 2048})
	bcl := client.New("http://" + srv.Addr())
	good := syntheticSource(1, "RecOK")
	oversize := good + "\n# " + strings.Repeat("pad ", 1024)

	stream, err := bcl.CheckBatch(context.Background(), client.BatchRequest{Items: []client.BatchItem{
		{Source: good},
		{}, // neither source nor fingerprint
		{Fingerprint: "sha256:0000000000000000000000000000000000000000000000000000000000000000"},
		{Source: good, Fingerprint: "sha256:wrong"},
		{Source: good, Class: "NoSuchClass"},
		{Source: oversize},
	}})
	if err != nil {
		t.Fatal(err)
	}
	records, err := stream.Collect()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]int{0: 200, 1: 400, 2: 404, 3: 400, 4: 404, 5: 413}
	if len(records) != len(want) {
		t.Fatalf("got %d records, want %d", len(records), len(want))
	}
	for _, rec := range records {
		if rec.Status != want[rec.Index] {
			t.Errorf("item %d: status = %d (%s), want %d", rec.Index, rec.Status, rec.Error, want[rec.Index])
		}
		if rec.Status != 200 && rec.Error == "" {
			t.Errorf("item %d: non-200 record without error text", rec.Index)
		}
	}
	sum := stream.Summary()
	if sum.Total != 6 || sum.Succeeded != 1 || sum.Failed != 5 {
		t.Fatalf("summary = %+v", sum)
	}
	waitMetric(t, cl, "shelleyd_batch_item_errors_total", 5)
}

// TestBatchBudgetRecordIs422 is the mid-batch budget refusal: a
// pathological item under a tight budget yields a 422 record while its
// neighbors verify normally.
func TestBatchBudgetRecordIs422(t *testing.T) {
	srv, cl := startServer(t, Config{Workers: 2, BatchWindow: 1, Limits: tightLimits()})
	bcl := client.New("http://" + srv.Addr())
	good := syntheticSource(1, "Bud")
	detblow := readTestdata(t, "pathological/detblow.py")

	stream, err := bcl.CheckBatch(context.Background(), client.BatchRequest{Items: []client.BatchItem{
		{Source: good}, {Source: detblow}, {Fingerprint: client.Fingerprint(good)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	records, err := stream.Collect()
	if err != nil {
		t.Fatal(err)
	}
	byIndex := map[int]client.BatchRecord{}
	for _, rec := range records {
		byIndex[rec.Index] = rec
	}
	if byIndex[0].Status != 200 || byIndex[2].Status != 200 {
		t.Fatalf("good items: %+v / %+v", byIndex[0], byIndex[2])
	}
	if byIndex[1].Status != 422 || !strings.Contains(byIndex[1].Error, "budget") {
		t.Fatalf("pathological item: status=%d error=%q, want 422 budget error", byIndex[1].Status, byIndex[1].Error)
	}
	if sum := stream.Summary(); sum.Succeeded != 2 || sum.Failed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	waitMetric(t, cl, "shelleyd_budget_exceeded_total", 1)
}

// TestBatchRequestValidation pins the whole-batch refusals that happen
// before any record is streamed.
func TestBatchRequestValidation(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 1, MaxBatchItems: 2})
	bcl := client.New("http://" + srv.Addr())
	ctx := context.Background()

	_, err := bcl.CheckBatch(ctx, client.BatchRequest{})
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 400 {
		t.Fatalf("empty batch: %v, want 400", err)
	}

	big := client.BatchRequest{Items: make([]client.BatchItem, 3)}
	_, err = bcl.CheckBatch(ctx, big)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 413 {
		t.Fatalf("oversized batch: %v, want 413", err)
	}
	if !strings.Contains(apiErr.Message, "/v1/jobs") {
		t.Fatalf("413 should point at the async job mode, got %q", apiErr.Message)
	}

	srv.draining.Store(true)
	_, err = bcl.CheckBatch(ctx, client.BatchRequest{Items: []client.BatchItem{{Fingerprint: "sha256:x"}}})
	srv.draining.Store(false)
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 503 || apiErr.RetryAfter <= 0 {
		t.Fatalf("draining batch: %v, want 503 with Retry-After", err)
	}
}

// TestBatchMatchesSequentialCheckRace is the ordering/consistency
// acceptance test: 64 concurrent clients stream overlapping batches
// whose items share fingerprints; every 200 record must embed a body
// byte-identical to a sequential /v1/check of the same item, the
// cross-request coalesce counter must move, and no stream may suffer
// NDJSON framing corruption. Run with -race in CI.
func TestBatchMatchesSequentialCheckRace(t *testing.T) {
	const (
		clients = 64
		sources = 8
	)
	var hold atomic.Bool
	release := make(chan struct{})
	srv, cl := startServer(t, Config{
		Workers: 4, RequestTimeout: 60 * time.Second,
		jobHook: func() {
			if hold.Load() {
				<-release
			}
		},
	})
	addr := srv.Addr()

	srcs := make([]string, sources)
	for i := range srcs {
		srcs[i] = syntheticSource(2, fmt.Sprintf("Race%d", i))
	}

	// Hold the workers so all 512 items are in flight together before
	// any source has ever been verified: 8 coalescing keys across 512
	// cold calls makes the coalesce counter a certainty, not a
	// scheduling coin flip. (Priming first would defeat the point — a
	// warm repeat is a body-cache hit that never reaches the pool.)
	hold.Store(true)
	got := make([][][]byte, clients)
	for c := range got {
		got[c] = make([][]byte, sources)
	}
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			bcl := client.New("http://"+addr, client.WithToken(fmt.Sprintf("race-%d", c)))
			items := make([]client.BatchItem, sources)
			for i := range items {
				src := (c + i) % sources // rotate so batches overlap, not align
				items[i] = client.BatchItem{ID: fmt.Sprint(src), Source: srcs[src]}
			}
			stream, err := bcl.CheckBatch(context.Background(), client.BatchRequest{Items: items})
			if err != nil {
				errs <- fmt.Errorf("client %d: %w", c, err)
				return
			}
			records, err := stream.Collect()
			if err != nil {
				errs <- fmt.Errorf("client %d: collect: %w", c, err)
				return
			}
			if sum := stream.Summary(); sum.Total != sources || sum.Succeeded != sources {
				errs <- fmt.Errorf("client %d: summary %+v", c, sum)
				return
			}
			for _, rec := range records {
				src := (c + rec.Index) % sources
				if rec.ID != fmt.Sprint(src) {
					errs <- fmt.Errorf("client %d item %d: ID %q does not match index", c, rec.Index, rec.ID)
					return
				}
				if rec.Status != http.StatusOK {
					errs <- fmt.Errorf("client %d item %d: status %d: %s", c, rec.Index, rec.Status, rec.Error)
					return
				}
				got[c][rec.Index] = rec.Check
			}
		}(c)
	}
	waitMetric(t, cl, "shelleyd_batch_inflight_items", clients*sources)
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Sequential ground truth, collected after the race: a /v1/check of
	// each source must be byte-identical to every batch record that
	// embedded it — one coalesced execution, one encoder, one memoized
	// body, regardless of which path served it.
	want := make([][]byte, sources)
	for i := range want {
		want[i] = checkBody(t, addr, client.CheckRequest{Source: srcs[i]})
	}
	for c := range got {
		for i, check := range got[c] {
			src := (c + i) % sources
			if check != nil && !bytes.Equal(check, want[src]) {
				t.Errorf("client %d item %d: batch record differs from sequential /v1/check:\nbatch: %s\ncheck: %s",
					c, i, check, want[src])
			}
		}
	}
	waitMetric(t, cl, "shelleyd_coalesced_total", 1)
	waitMetric(t, cl, "shelleyd_batch_items_total", clients*sources)
	waitGauge(t, cl, "shelleyd_batch_inflight_items", 0) // admission fully released
}

// TestBatchAdmissionPreventsStarvation is the hostile load test: a
// noisy client saturating its own share draws 429s with a backoff hint
// while a polite client's batch is admitted and completes untouched,
// and a batch overflowing the global window draws 503.
func TestBatchAdmissionPreventsStarvation(t *testing.T) {
	var hold atomic.Bool
	release := make(chan struct{})
	srv, cl := startServer(t, Config{
		Workers: 2, MaxBatchItems: 8, MaxClientItems: 8, MaxBatchInflight: 16,
		RequestTimeout: 60 * time.Second,
		jobHook: func() {
			if hold.Load() {
				<-release
			}
		},
	})
	addr := "http://" + srv.Addr()
	hostile := client.New(addr, client.WithToken("hostile"))
	polite := client.New(addr, client.WithToken("polite"))
	other := client.New(addr, client.WithToken("other"))
	ctx := context.Background()

	batch := func(tag string) client.BatchRequest {
		items := make([]client.BatchItem, 8)
		for i := range items {
			items[i] = client.BatchItem{Source: syntheticSource(1, fmt.Sprintf("%s%d", tag, i))}
		}
		return client.BatchRequest{Items: items}
	}

	hold.Store(true)
	type result struct {
		sum *client.BatchRecord
		err error
	}
	run := func(c *client.Client, req client.BatchRequest, out chan<- result) {
		stream, err := c.CheckBatch(ctx, req)
		if err != nil {
			out <- result{nil, err}
			return
		}
		if _, err := stream.Collect(); err != nil {
			out <- result{nil, err}
			return
		}
		out <- result{stream.Summary(), nil}
	}
	hostileDone := make(chan result, 1)
	go run(hostile, batch("Hog"), hostileDone)
	waitMetric(t, cl, "shelleyd_batch_inflight_items", 8)

	// The hostile client's share (8) is spent: one more item refuses
	// with 429 and a jittered backoff hint.
	_, err := hostile.CheckBatch(ctx, client.BatchRequest{Items: []client.BatchItem{{Fingerprint: "sha256:x"}}})
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("hostile overflow: %v, want 429", err)
	}
	if apiErr.RetryAfter < time.Second {
		t.Fatalf("429 Retry-After = %v, want >= 1s", apiErr.RetryAfter)
	}
	if !apiErr.Temporary() {
		t.Fatal("429 should be Temporary")
	}

	// The polite client is unaffected by the noisy neighbor: its batch
	// is admitted into the remaining global window.
	politeDone := make(chan result, 1)
	go run(polite, batch("Nice"), politeDone)
	waitMetric(t, cl, "shelleyd_batch_inflight_items", 16)

	// The global window (16) is now full: a third client refuses with
	// 503 — the daemon, not the client, is the bottleneck.
	_, err = other.CheckBatch(ctx, client.BatchRequest{Items: []client.BatchItem{{Fingerprint: "sha256:x"}}})
	if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != http.StatusServiceUnavailable || apiErr.RetryAfter < time.Second {
		t.Fatalf("global overflow: %v, want 503 with Retry-After >= 1s", err)
	}

	close(release)
	for _, ch := range []chan result{hostileDone, politeDone} {
		res := <-ch
		if res.err != nil {
			t.Fatal(res.err)
		}
		if res.sum.Total != 8 || res.sum.Succeeded != 8 {
			t.Fatalf("admitted batch did not complete cleanly: %+v", res.sum)
		}
	}
	waitMetric(t, cl, "shelleyd_batch_admission_rejected_total", 2)
}

// TestJobSubmitPollAndStream exercises the async mode end to end: a
// batch past the synchronous window is refused with 413, submitted as a
// job instead, observable mid-run by poll and by live stream, and
// complete with the full record log.
func TestJobSubmitPollAndStream(t *testing.T) {
	var hold atomic.Bool
	release := make(chan struct{})
	srv, cl := startServer(t, Config{
		Workers: 2, MaxBatchItems: 4,
		jobHook: func() {
			if hold.Load() {
				<-release
			}
		},
	})
	bcl := client.New("http://" + srv.Addr())
	ctx := context.Background()

	items := make([]client.BatchItem, 8)
	for i := range items {
		items[i] = client.BatchItem{ID: fmt.Sprint(i), Source: syntheticSource(1, fmt.Sprintf("Job%d", i))}
	}
	req := client.BatchRequest{Items: items}

	// Past the sync window: /v1/check-batch refuses and points here.
	if _, err := bcl.CheckBatch(ctx, req); err == nil {
		t.Fatal("8-item batch should exceed the 4-item sync window")
	}

	hold.Store(true)
	acc, err := bcl.SubmitJob(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(acc.Job, "job-") || acc.Total != 8 {
		t.Fatalf("accepted = %+v", acc)
	}

	// A live tail attaches while the job runs...
	stream, err := bcl.JobStream(ctx, acc.Job)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	// ...and a poll sees it running.
	st, err := bcl.Job(ctx, acc.Job, false)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "running" || st.Total != 8 {
		t.Fatalf("mid-run status = %+v", st)
	}

	close(release)
	records, err := stream.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 8 {
		t.Fatalf("streamed %d records, want 8", len(records))
	}
	if sum := stream.Summary(); !sum.Done || sum.Succeeded != 8 {
		t.Fatalf("stream summary = %+v", sum)
	}

	// The finished job polls done with the full record log, and a fresh
	// stream replays it from the start.
	st, err = bcl.Job(ctx, acc.Job, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Completed != 8 || st.Failed != 0 || len(st.Records) != 8 {
		t.Fatalf("final status = %+v", st)
	}
	replay, err := bcl.JobStream(ctx, acc.Job)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := replay.Collect()
	if err != nil || len(replayed) != 8 {
		t.Fatalf("replay: %d records, %v", len(replayed), err)
	}

	if _, err := bcl.Job(ctx, "job-doesnotexist", false); err == nil {
		t.Fatal("unknown job should 404")
	}
	waitMetric(t, cl, "shelleyd_jobs_total", 1)
	waitMetric(t, cl, "shelleyd_batch_items_total", 8)
}

// TestBatchClientCancelReleasesGoroutines: a client abandoning its
// stream mid-batch must not strand server goroutines or poison the
// daemon — remaining items resolve as canceled records (counted), the
// runner exits, and the next request is served normally.
func TestBatchClientCancelReleasesGoroutines(t *testing.T) {
	var hold atomic.Bool
	release := make(chan struct{})
	srv, cl := startServer(t, Config{
		Workers: 1, BatchWindow: 1, RequestTimeout: 60 * time.Second,
		jobHook: func() {
			if hold.Load() {
				<-release
			}
		},
	})
	bcl := client.New("http://" + srv.Addr())

	// Settle, then baseline.
	if _, err := bcl.CheckBatch(context.Background(), client.BatchRequest{Items: []client.BatchItem{{Source: syntheticSource(1, "Warm")}}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	hold.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	stream, err := bcl.CheckBatch(ctx, client.BatchRequest{Items: []client.BatchItem{
		{Source: syntheticSource(1, "CanA")},
		{Source: syntheticSource(1, "CanB")},
		{Source: syntheticSource(1, "CanC")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitMetric(t, cl, "shelleyd_batch_inflight_items", 3)
	cancel()
	stream.Close()
	waitMetric(t, cl, "shelleyd_batch_streams_canceled_total", 1)
	close(release)

	// Admission must drain (the handler's deferred release ran) and the
	// goroutines must return to baseline.
	waitGauge(t, cl, "shelleyd_batch_inflight_items", 0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline %d: canceled batch stranded work", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Daemon still fully serviceable.
	resp, err := client.New("http://"+srv.Addr()).Check(context.Background(), client.CheckRequest{Source: syntheticSource(1, "After")})
	if err != nil || !resp.OK {
		t.Fatalf("check after canceled batch: %+v, %v", resp, err)
	}
}

// TestJobLargerThanClientShareAdmits: a job bigger than the per-client
// item share must still be admitted and run to completion — its
// admission charge is its peak pool occupancy (min of item count and
// BatchWindow), not its full item count. The /v1/check-batch 413 path
// sends exactly such batches to /v1/jobs, so refusing them with a
// retryable 429 whose Retry-After could never succeed would be a trap.
func TestJobLargerThanClientShareAdmits(t *testing.T) {
	// MaxBatchItems 4 → MaxClientItems 8, MaxBatchInflight 16; a
	// 32-item job exceeds both while staying far under MaxJobItems.
	srv, cl := startServer(t, Config{Workers: 2, MaxBatchItems: 4})
	bcl := client.New("http://" + srv.Addr())
	ctx := context.Background()

	items := make([]client.BatchItem, 32)
	for i := range items {
		items[i] = client.BatchItem{ID: fmt.Sprint(i), Source: syntheticSource(1, fmt.Sprintf("BigJob%d", i))}
	}
	acc, err := bcl.SubmitJob(ctx, client.BatchRequest{Items: items})
	if err != nil {
		t.Fatalf("job larger than the client share was refused: %v", err)
	}
	stream, err := bcl.JobStream(ctx, acc.Job)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	records, err := stream.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 32 {
		t.Fatalf("streamed %d records, want 32", len(records))
	}
	if sum := stream.Summary(); !sum.Done || sum.Succeeded != 32 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// The runner's deferred release ran: the admission charge drains.
	waitGauge(t, cl, "shelleyd_batch_inflight_items", 0)
}

// TestShutdownUnblocksBatchBackpressure: a /v1/check-batch handler
// blocked in a backpressure send must unwind when a drain's budget
// expires — before the pool closes its queue — answering its remaining
// items as drain records instead of panicking the daemon with a send
// on a closed channel (http.Server.Shutdown never cancels request
// contexts, so only the server's drain context can free it).
func TestShutdownUnblocksBatchBackpressure(t *testing.T) {
	var hold atomic.Bool
	var hooked atomic.Int64
	release := make(chan struct{})
	srv, cl := startServer(t, Config{
		Workers: 1, QueueDepth: 1, BatchWindow: 1, RequestTimeout: 60 * time.Second,
		jobHook: func() {
			hooked.Add(1)
			if hold.Load() {
				<-release
			}
		},
	})
	bcl := client.New("http://" + srv.Addr())

	// Pin the single worker at the hook barrier, then fill the one
	// queue slot, so the batch below genuinely blocks submitting.
	hold.Store(true)
	singles := make(chan error, 2)
	check := func(tag string) {
		_, err := bcl.Check(context.Background(), client.CheckRequest{Source: syntheticSource(1, tag)})
		singles <- err
	}
	go check("PinWorker")
	for deadline := time.Now().Add(10 * time.Second); hooked.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the hook barrier")
		}
		time.Sleep(time.Millisecond)
	}
	go check("PinQueue")
	waitGauge(t, cl, "shelleyd_queue_depth", 1)

	type streamResult struct {
		recs []client.BatchRecord
		sum  *client.BatchRecord
		err  error
	}
	batchDone := make(chan streamResult, 1)
	go func() {
		stream, err := bcl.CheckBatch(context.Background(), client.BatchRequest{Items: []client.BatchItem{
			{ID: "stuck", Source: syntheticSource(1, "StuckItem")},
		}})
		if err != nil {
			batchDone <- streamResult{err: err}
			return
		}
		recs, err := stream.Collect()
		batchDone <- streamResult{recs: recs, sum: stream.Summary(), err: err}
	}()
	waitMetric(t, cl, "shelleyd_batch_backpressure_total", 1)

	// Drain with an already-expired budget. Pre-fix, this closed the
	// queue while the batch was parked in its send and panicked.
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	shutDone := make(chan error, 1)
	go func() { shutDone <- srv.Shutdown(shutCtx) }()

	res := <-batchDone
	if res.err != nil {
		t.Fatalf("batch stream: %v", res.err)
	}
	if len(res.recs) != 1 || res.recs[0].Status != http.StatusServiceUnavailable {
		t.Fatalf("overtaken item = %+v, want one 503 drain record", res.recs)
	}
	if res.sum == nil || !res.sum.Done || !strings.Contains(res.sum.Error, "draining") {
		t.Fatalf("terminal record = %+v, want the drain as its cause", res.sum)
	}
	if err := <-shutDone; err == nil {
		t.Fatal("Shutdown with an expired budget should report its context error")
	}

	// Release the pinned work so the pool can close; both held checks
	// were admitted before the drain and must still complete.
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-singles; err != nil {
			t.Errorf("pinned check dropped by drain: %v", err)
		}
	}
}

// TestJobStreamDetachDoesNotCountAsCancel: dropping a ?stream=1 tail
// cancels nothing — the job keeps running to completion, and the
// disconnect counts as a detached tailer, not a canceled batch stream.
func TestJobStreamDetachDoesNotCountAsCancel(t *testing.T) {
	var hold atomic.Bool
	release := make(chan struct{})
	srv, cl := startServer(t, Config{
		Workers: 1, MaxBatchItems: 1,
		jobHook: func() {
			if hold.Load() {
				<-release
			}
		},
	})
	bcl := client.New("http://" + srv.Addr())
	ctx := context.Background()

	hold.Store(true)
	acc, err := bcl.SubmitJob(ctx, client.BatchRequest{Items: []client.BatchItem{
		{Source: syntheticSource(1, "TailA")},
		{Source: syntheticSource(1, "TailB")},
	}})
	if err != nil {
		t.Fatal(err)
	}

	// Attach a tail while the job is held, then hang up.
	tailCtx, cancelTail := context.WithCancel(ctx)
	stream, err := bcl.JobStream(tailCtx, acc.Job)
	if err != nil {
		t.Fatal(err)
	}
	cancelTail()
	stream.Close()
	waitMetric(t, cl, "shelleyd_job_stream_detached_total", 1)

	close(release)
	for deadline := time.Now().Add(10 * time.Second); ; time.Sleep(5 * time.Millisecond) {
		st, err := bcl.Job(ctx, acc.Job, false)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == "done" {
			if st.Failed != 0 || st.Completed != 2 {
				t.Fatalf("job after detached tail = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished after its tailer detached")
		}
	}
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := client.ParseMetric(text, "shelleyd_batch_streams_canceled_total"); ok && v != 0 {
		t.Fatalf("tailer detach counted as a canceled batch stream (%v)", v)
	}
}

// TestAppendRecordMatchesJSONMarshal pins the hot-path record encoder
// byte-for-byte against encoding/json across every field combination
// the stream can emit, plus the escaping cases that must punt to the
// reflection fallback. If BatchRecord grows a field, this test is what
// forces appendRecord to learn it.
func TestAppendRecordMatchesJSONMarshal(t *testing.T) {
	recs := []client.BatchRecord{
		{},
		{Index: 7},
		{Index: 3, ID: "load", Status: 200, Check: json.RawMessage(`{"ok":true,"fingerprint":"sha256:ab","reports":[{"class":"C","verified":true}]}`)},
		{Index: 0, Status: 200, Check: json.RawMessage(`{}`)},
		{Index: 1, ID: "bad", Status: 400, Error: "item needs source or fingerprint"},
		{Index: 2, Status: 404, Error: "module sha256:00 not resident; re-POST its source"},
		{Index: 4, Status: 499, Error: "client canceled before this item completed"},
		{Index: 5, Status: 422, Error: "budget exceeded: states"},
		{Done: true, Total: 64, Succeeded: 64},
		{Done: true, Total: 3, Succeeded: 1, Failed: 2, Error: "batch canceled: context canceled"},
		{Index: -1, Status: -2, Total: -3, Succeeded: -4, Failed: -5},
	}
	for i, rec := range recs {
		want, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := appendRecord(nil, rec)
		if !ok {
			t.Fatalf("rec %d: fast path refused a plain record: %+v", i, rec)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("rec %d:\nfast %s\njson %s", i, got, want)
		}
	}
	// Strings encoding/json escapes (quotes, backslashes, control
	// chars, HTML-unsafe, non-ASCII) must be refused so the caller
	// falls back — the wire bytes stay identical either way.
	for _, s := range []string{`qu"ote`, `back\slash`, "ctrl\x01", "<script>", "a&b", "uni\u00e9", "high\x7f"} {
		if _, ok := appendRecord(nil, client.BatchRecord{ID: s}); ok {
			t.Errorf("fast path accepted ID %q, which needs escaping", s)
		}
		if _, ok := appendRecord(nil, client.BatchRecord{Error: s}); ok {
			t.Errorf("fast path accepted Error %q, which needs escaping", s)
		}
	}
}

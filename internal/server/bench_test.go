package server

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
)

// benchServer boots a daemon sized like the default production config.
func benchServer(b *testing.B) *client.Client {
	b.Helper()
	srv := New(Config{RequestTimeout: 60 * time.Second})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	cl := client.New("http://" + addr)
	if err := cl.WaitReady(context.Background(), 5*time.Second); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return cl
}

// BenchmarkServerCheckCold measures the full request path on a source
// the daemon has never seen: HTTP + JSON + module load + cold pipeline
// run. Every iteration uses a distinct source so nothing is resident.
func BenchmarkServerCheckCold(b *testing.B) {
	cl := benchServer(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := syntheticSource(4, fmt.Sprintf("cold%d", i))
		if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerCheckWarm measures the steady state: the same source
// re-checked against a resident module — a fingerprint lookup plus
// cached reports, so the wire and scheduling overhead dominates.
func BenchmarkServerCheckWarm(b *testing.B) {
	cl := benchServer(b)
	ctx := context.Background()
	src := syntheticSource(4, "warm")
	if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
		b.Fatal(err)
	}
	fp := client.Fingerprint(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Check(ctx, client.CheckRequest{Fingerprint: fp}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerCheckCoalesced measures identical requests raced from
// many goroutines, where in-flight coalescing and the resident module
// collapse the work; per-op cost is one shared execution fanned out.
func BenchmarkServerCheckCoalesced(b *testing.B) {
	cl := benchServer(b)
	src := syntheticSource(4, "coalesced")
	ctx := context.Background()
	if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
		b.Fatal(err)
	}
	var failed atomic.Bool
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
				failed.Store(true)
			}
		}
	})
	if failed.Load() {
		b.Fatal("requests failed under parallel load")
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
)

// benchServer boots a daemon sized like the default production config.
func benchServer(b *testing.B) *client.Client {
	return benchServerCfg(b, Config{RequestTimeout: 60 * time.Second})
}

func benchServerCfg(b *testing.B, cfg Config) *client.Client {
	b.Helper()
	srv := New(cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	cl := client.New("http://" + addr)
	if err := cl.WaitReady(context.Background(), 5*time.Second); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return cl
}

// BenchmarkServerCheckCold measures the full request path on a source
// the daemon has never seen: HTTP + JSON + module load + cold pipeline
// run. Every iteration uses a distinct source so nothing is resident.
func BenchmarkServerCheckCold(b *testing.B) {
	cl := benchServer(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := syntheticSource(4, fmt.Sprintf("cold%d", i))
		if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerCheckWarm measures the steady state: the same source
// re-checked against a resident module — a fingerprint lookup plus
// cached reports, so the wire and scheduling overhead dominates.
func BenchmarkServerCheckWarm(b *testing.B) {
	cl := benchServer(b)
	ctx := context.Background()
	src := syntheticSource(4, "warm")
	if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
		b.Fatal(err)
	}
	fp := client.Fingerprint(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Check(ctx, client.CheckRequest{Fingerprint: fp}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerCheckWarmTraced is the warm path with tracing on —
// the shelleyd -trace configuration. Each request opens one http.check
// root span into the ring buffer; the per-class report hits annotate
// it as one aggregated counter. EXPERIMENTS.md P3 records the ratio
// against BenchmarkServerCheckWarm and attributes the delta (one root
// span plus GC amplification of its allocations in this closed loop;
// the Inproc pair below isolates the handler-side cost).
func BenchmarkServerCheckWarmTraced(b *testing.B) {
	cl := benchServerCfg(b, Config{RequestTimeout: 60 * time.Second, Tracing: true})
	ctx := context.Background()
	src := syntheticSource(4, "warm")
	if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
		b.Fatal(err)
	}
	fp := client.Fingerprint(src)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Check(ctx, client.CheckRequest{Fingerprint: fp}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchCheckWarmInproc drives the mux directly with a ResponseRecorder
// — no sockets — so the handler-layer cost is isolated from loopback
// scheduling noise. The Inproc pair below is the denominator used to
// attribute the traced-vs-plain delta in EXPERIMENTS.md P3.
func benchCheckWarmInproc(b *testing.B, cfg Config) {
	b.Helper()
	src := syntheticSource(4, "warm")
	primeBody, _ := json.Marshal(client.CheckRequest{Source: src})
	reqBody, _ := json.Marshal(client.CheckRequest{Fingerprint: client.Fingerprint(src)})
	srv := New(cfg)
	if _, err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	w := httptest.NewRecorder()
	srv.mux.ServeHTTP(w, httptest.NewRequest("POST", "/v1/check", bytes.NewReader(primeBody)))
	if w.Code != 200 {
		b.Fatalf("prime: %d %s", w.Code, w.Body.String())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		srv.mux.ServeHTTP(w, httptest.NewRequest("POST", "/v1/check", bytes.NewReader(reqBody)))
		if w.Code != 200 {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
}

func BenchmarkServerCheckWarmInproc(b *testing.B) {
	benchCheckWarmInproc(b, Config{RequestTimeout: 60 * time.Second})
}

func BenchmarkServerCheckWarmInprocTraced(b *testing.B) {
	benchCheckWarmInproc(b, Config{RequestTimeout: 60 * time.Second, Tracing: true})
}

// BenchmarkServerCheckWarmInprocTelemetry is the warm path under the
// default operating posture of shelleyd: telemetry on (engine ticking,
// tail sampling armed). The per-request cost over plain Inproc is the
// telemetry tax — the lock-free histogram observe plus the exemplar
// decision — which EXPERIMENTS.md P7 requires to stay within 5%.
func BenchmarkServerCheckWarmInprocTelemetry(b *testing.B) {
	benchCheckWarmInproc(b, Config{RequestTimeout: 60 * time.Second, Telemetry: true})
}

// benchWarm64 boots a daemon with 64 distinct resident modules and
// returns a client plus their fingerprints — the shared fixture of the
// batch-vs-singles pair recorded as EXPERIMENTS.md P4. BatchWindow is
// pinned to the production default for a multicore daemon (window =
// workers, here 8) rather than left to GOMAXPROCS, so the batch side
// exercises the fan-out + burst-flush path even on a 1-CPU runner;
// both sides of the pair share this one server config.
func benchWarm64(b *testing.B) (*client.Client, []string) {
	b.Helper()
	cl := benchServerCfg(b, Config{RequestTimeout: 60 * time.Second, BatchWindow: benchBatchWindow})
	ctx := context.Background()
	fps := make([]string, 64)
	for i := range fps {
		src := syntheticSource(1, fmt.Sprintf("p4x%d", i))
		if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
			b.Fatal(err)
		}
		fps[i] = client.Fingerprint(src)
	}
	return cl, fps
}

// BenchmarkServerCheckBatch64Warm is one 64-class batch per iteration:
// a single HTTP request whose 64 records stream back over one
// connection. Compare per-op time against BenchmarkServerCheck64
// SinglesWarm — the warm path is wire-dominated (P2), so folding 64
// round trips into one stream is where batch throughput comes from.
func BenchmarkServerCheckBatch64Warm(b *testing.B) {
	cl, fps := benchWarm64(b)
	ctx := context.Background()
	items := make([]client.BatchItem, len(fps))
	for i, fp := range fps {
		items[i] = client.BatchItem{Fingerprint: fp}
	}
	req := client.BatchRequest{Items: items}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stream, err := cl.CheckBatch(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		records, err := stream.Collect()
		if err != nil {
			b.Fatal(err)
		}
		if sum := stream.Summary(); len(records) != 64 || sum.Succeeded != 64 {
			b.Fatalf("records=%d summary=%+v", len(records), sum)
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "items/s")
}

// BenchmarkServerCheck64SinglesWarm is the same 64 warm verifications
// as 64 sequential /v1/check requests — the round-trip-per-class
// baseline the batch endpoint replaces.
func BenchmarkServerCheck64SinglesWarm(b *testing.B) {
	cl, fps := benchWarm64(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, fp := range fps {
			if _, err := cl.Check(ctx, client.CheckRequest{Fingerprint: fp}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N*64)/b.Elapsed().Seconds(), "items/s")
}

// BenchmarkServerCheckCoalesced measures identical requests raced from
// many goroutines, where in-flight coalescing and the resident module
// collapse the work; per-op cost is one shared execution fanned out.
func BenchmarkServerCheckCoalesced(b *testing.B) {
	cl := benchServer(b)
	src := syntheticSource(4, "coalesced")
	ctx := context.Background()
	if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
		b.Fatal(err)
	}
	var failed atomic.Bool
	b.ReportAllocs()
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
				failed.Store(true)
			}
		}
	})
	if failed.Load() {
		b.Fatal("requests failed under parallel load")
	}
}

// benchBatchWindow parameterizes the P4 fixture's fan-out width so the
// window sweep in EXPERIMENTS.md P4 can be reproduced by editing one
// value; see benchWarm64 for why it is pinned rather than defaulted.
var benchBatchWindow = 1

package server

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/budget"
)

// tightLimits trips fast on every pathological corpus entry while
// leaving the small good sources untouched.
func tightLimits() budget.Limits {
	return budget.Limits{
		MaxNFAStates:   500,
		MaxDFAStates:   500,
		MaxRegexSize:   500,
		MaxSearchNodes: 500,
	}
}

func readPathologicalCorpus(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "pathological", "*.py"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no pathological corpus files")
	}
	var sources []string
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		sources = append(sources, string(b))
	}
	return sources
}

// TestBudgetExceededAnswers422 pins the error surface: a blowup
// request under a tight budget answers 422 with a structured message,
// and the budget-exceeded counter moves.
func TestBudgetExceededAnswers422(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 2, Limits: tightLimits()})
	ctx := context.Background()
	for _, src := range readPathologicalCorpus(t) {
		_, err := cl.Check(ctx, client.CheckRequest{Source: src})
		apiErr, ok := err.(*client.APIError)
		if !ok {
			t.Fatalf("want *client.APIError, got %v", err)
		}
		if apiErr.StatusCode != 422 {
			t.Fatalf("want 422, got %d: %s", apiErr.StatusCode, apiErr.Message)
		}
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := client.ParseMetric(metrics, "shelleyd_budget_exceeded_total"); !ok || v == 0 {
		t.Fatalf("shelleyd_budget_exceeded_total = %v (present=%v), want > 0", v, ok)
	}
	// The pre-rename shelley_* alias finished its one-release
	// deprecation window and must stay gone.
	if _, ok := client.ParseMetric(metrics, "shelley_budget_exceeded_total"); ok {
		t.Fatal("removed alias shelley_budget_exceeded_total is still exported")
	}
}

// TestBlowupRequestReleasesWorker is the worker-stop regression: a
// request whose construction cannot finish inside the deadline must
// come back as a 504 near the deadline, and the worker that ran it
// must actually stop — workers back to idle, goroutines back to
// baseline — instead of grinding on the abandoned exponential build.
func TestBlowupRequestReleasesWorker(t *testing.T) {
	detblow, err := os.ReadFile(filepath.Join("..", "..", "testdata", "pathological", "detblow.py"))
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	// Huge limits so the deadline, not the budget, is the binding cutoff.
	huge := budget.Limits{MaxNFAStates: 1 << 30, MaxDFAStates: 1 << 30, MaxRegexSize: 1 << 30, MaxSearchNodes: 1 << 30}
	srv, cl := startServer(t, Config{Workers: 2, RequestTimeout: 300 * time.Millisecond, Limits: huge})
	ctx := context.Background()

	start := time.Now()
	_, err = cl.Check(ctx, client.CheckRequest{Source: string(detblow)})
	elapsed := time.Since(start)
	apiErr, ok := err.(*client.APIError)
	if !ok {
		t.Fatalf("want *client.APIError, got %v", err)
	}
	if apiErr.StatusCode != 504 {
		t.Fatalf("want 504, got %d: %s", apiErr.StatusCode, apiErr.Message)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("504 took %v; the worker kept grinding long past the deadline", elapsed)
	}

	// The worker must go idle and its goroutines must drain.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		busy := srv.met.workersBusy.Load()
		n := runtime.NumGoroutine()
		if busy == 0 && n <= baseline+8 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker did not stop: busy=%d goroutines=%d (baseline %d)", busy, n, baseline)
		}
		time.Sleep(100 * time.Millisecond)
	}

	// And the daemon is still fully serviceable afterwards.
	if _, err := cl.Check(ctx, client.CheckRequest{Source: syntheticSource(1, "After")}); err != nil {
		t.Fatalf("good request after blowup failed: %v", err)
	}
}

// TestHostileRunSurvives hammers one daemon with hundreds of mixed
// good and pathological requests plus injected panics: the daemon must
// answer every request with a well-formed HTTP response, never crash,
// keep memory bounded, and show nonzero panic and budget-exceeded
// counters afterwards.
func TestHostileRunSurvives(t *testing.T) {
	pathological := readPathologicalCorpus(t)
	var jobs atomic.Int64
	cfg := Config{
		Workers:        4,
		RequestTimeout: 15 * time.Second,
		Limits:         tightLimits(),
		runHook: func() {
			// Every 17th pooled job panics inside the contained region,
			// simulating a pipeline-stage bug under load.
			if jobs.Add(1)%17 == 0 {
				panic("injected verification panic")
			}
		},
	}
	_, cl := startServer(t, cfg)
	ctx := context.Background()

	const clients = 8
	const perClient = 64 // 512 requests total
	var badStatus atomic.Int64
	var transport atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var src string
				if i%2 == 0 {
					// Distinct tags defeat the module cache and the
					// coalescer often enough to keep real work flowing.
					src = syntheticSource(1, fmt.Sprintf("H%dx%d", c, i))
				} else {
					src = pathological[(c+i)%len(pathological)] + fmt.Sprintf("\n# variant %d.%d\n", c, i%4)
				}
				_, err := cl.Check(ctx, client.CheckRequest{Source: src})
				if err == nil {
					continue
				}
				apiErr, ok := err.(*client.APIError)
				if !ok {
					// Transport-level failure: the daemon dropped the
					// connection — exactly what containment must prevent.
					transport.Add(1)
					continue
				}
				switch apiErr.StatusCode {
				case 422, 500, 503, 504:
					// Structured refusals are the expected hostile-run diet.
				default:
					badStatus.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	if n := transport.Load(); n > 0 {
		t.Fatalf("%d transport-level failures; daemon dropped connections", n)
	}
	if n := badStatus.Load(); n > 0 {
		t.Fatalf("%d responses with unexpected status codes", n)
	}

	// The daemon survived; its counters must show what it absorbed.
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatalf("daemon unhealthy after hostile run: %v", err)
	}
	if v, ok := client.ParseMetric(metrics, "shelleyd_panics_total"); !ok || v == 0 {
		t.Fatalf("shelleyd_panics_total = %v (present=%v), want > 0", v, ok)
	}
	if v, ok := client.ParseMetric(metrics, "shelleyd_budget_exceeded_total"); !ok || v == 0 {
		t.Fatalf("shelleyd_budget_exceeded_total = %v (present=%v), want > 0", v, ok)
	}

	// Bounded memory: after GC the heap must be far below what any
	// runaway exponential construction would have pinned.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 1<<30 {
		t.Fatalf("heap after hostile run = %d bytes; memory is not bounded", ms.HeapAlloc)
	}
}

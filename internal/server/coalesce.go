package server

import (
	"context"
	"errors"
	"strings"
	"sync"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/store"
)

// call is one coalesced execution: the first request for a key becomes
// the leader and computes; identical in-flight requests become
// followers and share the leader's byte-exact response. done is closed
// once status/body are final.
type call struct {
	done   chan struct{}
	status int
	body   []byte
}

// resolve publishes the result and releases every follower. Safe to
// call once only.
func (c *call) resolve(status int, body []byte) {
	c.status = status
	c.body = body
	close(c.done)
}

// coalescer collapses identical in-flight requests by key (endpoint +
// module fingerprint + canonical parameters). Unlike the pipeline
// cache it remembers nothing: entries exist only while a request is in
// flight, so it is a concurrency dedup layer on top of the PR 1
// memoization, not a second cache.
type coalescer struct {
	mu       sync.Mutex
	inflight map[string]*call
}

func newCoalescer() *coalescer {
	return &coalescer{inflight: make(map[string]*call)}
}

// get returns the in-flight call for key, creating it (leader=true)
// when none exists. The leader must eventually resolve the call and
// then forget the key.
func (co *coalescer) get(key string) (c *call, leader bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if c, ok := co.inflight[key]; ok {
		return c, false
	}
	c = &call{done: make(chan struct{})}
	co.inflight[key] = c
	return c, true
}

// forget removes a resolved call so later identical requests execute
// fresh (and hit the pipeline cache instead).
func (co *coalescer) forget(key string) {
	co.mu.Lock()
	delete(co.inflight, key)
	co.mu.Unlock()
}

// errNotResident distinguishes "fingerprint unknown" (404) from load
// failures (422).
var errNotResident = errors.New("server: module not resident")

// moduleEntry is one resident module with its own singleflight cell,
// so concurrent first requests for the same source parse it once.
type moduleEntry struct {
	ready chan struct{}
	mod   *shelley.Module
	err   error

	// bodies memoizes settled 200 response bodies by check key. A
	// module is content-addressed and immutable, so a verified response
	// for (fingerprint, class, precise) can never change — warm repeats
	// are served from here without a pool round-trip. Only successes
	// are stored: errors (budget, timeout, panic) must recompute, per
	// the PR 5 rule that transient failures are never made sticky. The
	// map's lifetime is the entry's, so module eviction reclaims it.
	bodies sync.Map // check key → []byte
}

// moduleCache keeps loaded modules (and their warm pipeline caches)
// resident by content fingerprint. Residency is what turns the
// daemon's requests from process-lifetime work into lookups: the
// second check of an unchanged source is a fingerprint hit plus a
// report clone.
type moduleCache struct {
	mu      sync.Mutex
	entries map[string]*moduleEntry
	max     int
	met     *metrics

	// store, when non-nil, is attached to every freshly loaded module's
	// report stage (Module.PersistReports): whole-class reports then
	// read through and write behind the durable artifact store, which is
	// what makes a restarted daemon's first source-bearing check a
	// decode instead of a full pipeline run.
	store *store.Store
}

func newModuleCache(max int, met *metrics, st *store.Store) *moduleCache {
	return &moduleCache{entries: make(map[string]*moduleEntry), max: max, met: met, store: st}
}

// get returns the resident module for fp, loading it from source on
// first use. An empty source is a cache-only lookup and fails with
// errNotResident when the module is not in memory. Load errors are NOT
// made resident: a bad source answers 422 but does not occupy a slot,
// and a corrected re-upload under a new fingerprint loads fresh.
func (mc *moduleCache) get(ctx context.Context, fp, source string) (*shelley.Module, error) {
	mc.mu.Lock()
	if e, ok := mc.entries[fp]; ok {
		mc.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			return nil, e.err
		}
		mc.met.moduleHits.Add(1)
		return e.mod, nil
	}
	if source == "" {
		mc.mu.Unlock()
		return nil, errNotResident
	}
	e := &moduleEntry{ready: make(chan struct{})}
	mc.entries[fp] = e
	mc.evictLocked(fp)
	mc.mu.Unlock()

	mc.met.moduleMisses.Add(1)
	e.mod, e.err = shelley.LoadReaderContext(ctx, shortFP(fp), strings.NewReader(source))
	if e.err == nil && mc.store != nil {
		// Attached before ready closes, so no check can race past a
		// module whose persistence layer is not yet in place.
		e.mod.PersistReports(mc.store)
	}
	close(e.ready)
	if e.err != nil {
		mc.mu.Lock()
		delete(mc.entries, fp)
		mc.mu.Unlock()
		return nil, e.err
	}
	return e.mod, nil
}

// evictLocked drops arbitrary settled entries (never keep, the entry
// just inserted) until the cache respects max. Eviction order is map
// order — effectively random — which is cheap and good enough for a
// content-addressed cache whose entries are all equally rebuildable.
func (mc *moduleCache) evictLocked(keep string) {
	if mc.max <= 0 {
		return
	}
	for fp, e := range mc.entries {
		if len(mc.entries) <= mc.max {
			return
		}
		if fp == keep {
			continue
		}
		select {
		case <-e.ready:
			delete(mc.entries, fp)
			mc.met.moduleEvictions.Add(1)
		default:
			// Still loading; a follower may be blocked on ready.
		}
	}
}

// settled returns fp's entry when it is resident and loaded, else nil.
// It never blocks on a loading entry — body-cache lookups are an
// opportunistic fast path, not a synchronization point.
func (mc *moduleCache) settled(fp string) *moduleEntry {
	mc.mu.Lock()
	e := mc.entries[fp]
	mc.mu.Unlock()
	if e == nil {
		return nil
	}
	select {
	case <-e.ready:
	default:
		return nil
	}
	if e.err != nil {
		return nil
	}
	return e
}

// cachedBody returns the memoized 200 body for key on a settled
// resident module.
func (mc *moduleCache) cachedBody(fp, key string) ([]byte, bool) {
	e := mc.settled(fp)
	if e == nil {
		return nil, false
	}
	v, ok := e.bodies.Load(key)
	if !ok {
		return nil, false
	}
	return v.([]byte), true
}

// storeBody memoizes a settled 200 body for key. A no-op when the
// module was evicted while its check ran — the body dies with it.
func (mc *moduleCache) storeBody(fp, key string, body []byte) {
	if e := mc.settled(fp); e != nil {
		e.bodies.Store(key, body)
	}
}

// stats sums the pipeline-cache counters of every resident module.
func (mc *moduleCache) stats() shelley.PipelineStats {
	mc.mu.Lock()
	mods := make([]*shelley.Module, 0, len(mc.entries))
	for _, e := range mc.entries {
		select {
		case <-e.ready:
			if e.err == nil {
				mods = append(mods, e.mod)
			}
		default:
		}
	}
	mc.mu.Unlock()

	var agg shelley.PipelineStats
	for _, m := range mods {
		s := m.PipelineStats()
		if agg.Stages == nil {
			agg = s
			continue
		}
		for i := range agg.Stages {
			agg.Stages[i].Hits += s.Stages[i].Hits
			agg.Stages[i].Misses += s.Stages[i].Misses
			agg.Stages[i].Entries += s.Stages[i].Entries
			agg.Stages[i].PersistHits += s.Stages[i].PersistHits
			agg.Stages[i].BuildTime += s.Stages[i].BuildTime
			for b := range agg.Stages[i].Buckets {
				agg.Stages[i].Buckets[b] += s.Stages[i].Buckets[b]
			}
		}
	}
	if agg.Stages == nil {
		agg = (*pipeline.Cache)(nil).Stats()
	}
	return agg
}

// shortFP abbreviates a fingerprint for error labels.
func shortFP(fp string) string {
	if len(fp) > 15 {
		return fp[:15]
	}
	return fp
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/obs"
)

// errJobsFull means the job store is at capacity with every retained
// job still running — nothing is evictable, so submission must wait.
var errJobsFull = errors.New("server: job store full")

// jobState is one async batch job: an append-only record log plus a
// change broadcast, so pollers snapshot progress and streamers tail the
// log live without the runner ever blocking on a slow reader.
type jobState struct {
	id    string
	total int

	mu      sync.Mutex
	records []client.BatchRecord
	failed  int
	done    bool
	summary client.BatchRecord

	// changed is closed and replaced on every append, and closed for
	// good at finish — a waiter holding the old channel wakes exactly
	// once per state change it hasn't seen.
	changed chan struct{}
}

func newJob(id string, total int) *jobState {
	return &jobState{id: id, total: total, changed: make(chan struct{})}
}

func (j *jobState) append(rec client.BatchRecord) {
	j.mu.Lock()
	j.records = append(j.records, rec)
	if rec.Status != http.StatusOK {
		j.failed++
	}
	ch := j.changed
	j.changed = make(chan struct{})
	j.mu.Unlock()
	close(ch)
}

func (j *jobState) finish(summary client.BatchRecord) {
	j.mu.Lock()
	j.done = true
	j.summary = summary
	ch := j.changed
	j.mu.Unlock()
	// Left closed permanently: late streamers wake immediately and see
	// done on their next view.
	close(ch)
}

// view returns the records from index from onward, completion state,
// and the channel that closes on the next change. The returned slice
// aliases the log (entries are never mutated after append).
func (j *jobState) view(from int) (recs []client.BatchRecord, done bool, summary client.BatchRecord, ch <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < len(j.records) {
		recs = j.records[from:]
	}
	return recs, j.done, j.summary, j.changed
}

func (j *jobState) isDone() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// status snapshots the job as a poll body.
func (j *jobState) status(withRecords bool) client.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := client.JobStatus{
		Job:       j.id,
		State:     "running",
		Total:     j.total,
		Completed: len(j.records),
		Failed:    j.failed,
	}
	if j.done {
		st.State = "done"
	}
	if withRecords {
		st.Records = append([]client.BatchRecord(nil), j.records...)
	}
	return st
}

// jobStore retains jobs by ID, bounded by max: at capacity, the oldest
// completed job is evicted to admit a new one; when every retained job
// is still running, submission is refused (errJobsFull → 503).
type jobStore struct {
	mu    sync.Mutex
	max   int
	m     map[string]*jobState
	order []string
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, m: make(map[string]*jobState)}
}

func (s *jobStore) add(j *jobState) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.m) >= s.max {
		evicted := false
		for i, id := range s.order {
			if s.m[id].isDone() {
				delete(s.m, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return errJobsFull
		}
	}
	s.m[j.id] = j
	s.order = append(s.order, j.id)
	return nil
}

func (s *jobStore) get(id string) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[id]
}

// handleJobSubmit is POST /v1/jobs: the async mode for batches past the
// synchronous window. The request is validated like /v1/check-batch and
// admitted against the same per-client/global budgets (so a client's
// jobs and streams share one share), answered 202 with a job ID
// immediately, and run by a daemon-owned goroutine that survives the
// submitting connection. Results accumulate in the job's record log for
// GET /v1/jobs/{id} to poll or stream.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) int {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "2")
		return s.writeError(w, http.StatusServiceUnavailable, "daemon is draining")
	}
	var req client.BatchRequest
	if err := decodeBody(w, r, s.cfg.MaxBatchBytes, &req); err != nil {
		return s.writeError(w, http.StatusBadRequest, err.Error())
	}
	if len(req.Items) == 0 {
		return s.writeError(w, http.StatusBadRequest, "job needs at least one item")
	}
	if len(req.Items) > s.cfg.MaxJobItems {
		return s.writeError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf(
			"job of %d exceeds the per-job limit of %d; split it",
			len(req.Items), s.cfg.MaxJobItems))
	}
	// A job's admission charge is its peak pool occupancy, not its item
	// count: runBatch runs at most BatchWindow of a job's items
	// concurrently, the rest waiting in the runner, so that is what the
	// job can actually take from the pool. The cap against the client
	// share and global window keeps the charge admissible under any
	// configuration. Charging the full count instead would make every
	// job between MaxClientItems and MaxJobItems items permanently
	// refusable — a 429/503 whose Retry-After can never succeed, at the
	// end of the /v1/check-batch 413 trail that sends oversized batches
	// here.
	charge := min(len(req.Items), s.cfg.BatchWindow, s.cfg.MaxClientItems, s.cfg.MaxBatchInflight)
	release, status, retryAfter := s.adm.admit(clientKey(r), charge)
	if status != 0 {
		msg := "per-client batch share exhausted; retry after backoff"
		switch status {
		case http.StatusServiceUnavailable:
			msg = "batch window saturated; retry after backoff"
		case http.StatusRequestEntityTooLarge:
			// Unreachable under withDefaults (the charge is capped to the
			// admission windows above), but a hand-rolled Config could
			// shrink the windows below BatchWindow — answer terminally
			// rather than loop a compliant retrying client.
			msg = fmt.Sprintf("job charge of %d exceeds the admission window and can never be admitted; split the job", charge)
		}
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		}
		return s.writeError(w, status, msg)
	}
	if !s.addSubmitter() {
		release()
		w.Header().Set("Retry-After", "2")
		return s.writeError(w, http.StatusServiceUnavailable, "daemon is draining")
	}
	id := "job-" + obs.NewTraceID()[:16]
	js := newJob(id, len(req.Items))
	if err := s.jobs.add(js); err != nil {
		s.submitters.Done()
		release()
		w.Header().Set("Retry-After", "2")
		return s.writeError(w, http.StatusServiceUnavailable,
			"job store full (every retained job still running); retry after backoff")
	}
	s.met.jobsSubmitted.Add(1)
	s.met.jobsActive.Add(1)
	s.met.batchItems.Add(uint64(len(req.Items)))

	// The runner outlives this request: it runs under drainCtx
	// (canceled only when a drain's budget expires) with the
	// submitter's trace re-attached, and holds its admission charge
	// until the last record. It was registered as a submitter above, so
	// Shutdown waits for it before closing the pool.
	carrier := obs.Carry(r.Context())
	go func() {
		defer s.submitters.Done()
		defer release()
		defer s.met.jobsActive.Add(-1)
		s.runBatch(carrier.Context(s.drainCtx), req.Items, func(rec client.BatchRecord, _ bool) {
			if rec.Done {
				js.finish(rec)
			} else {
				js.append(rec)
			}
		})
	}()

	body, err := json.Marshal(client.JobAccepted{Job: id, Total: len(req.Items)})
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
	}
	return s.writeRaw(w, http.StatusAccepted, body)
}

// handleJobGet is GET /v1/jobs/{id}: a progress snapshot by default
// (?records=1 to include accumulated records), or a live NDJSON tail
// with ?stream=1 — replay everything recorded so far, then follow until
// the terminal record, exactly the wire format of /v1/check-batch.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) int {
	js := s.jobs.get(r.PathValue("id"))
	if js == nil {
		return s.writeError(w, http.StatusNotFound, "job not found (evicted or never existed)")
	}
	if r.URL.Query().Get("stream") == "1" {
		return s.streamJob(w, r, js)
	}
	body, err := json.Marshal(js.status(r.URL.Query().Get("records") == "1"))
	if err != nil {
		return s.writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
	}
	return s.writeRaw(w, http.StatusOK, body)
}

func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, js *jobState) int {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flush := func() {}
	if f, ok := w.(http.Flusher); ok {
		flush = f.Flush
	}
	flush()
	next := 0
	for {
		recs, done, summary, changed := js.view(next)
		for _, rec := range recs {
			s.writeRecord(w, rec)
		}
		next += len(recs)
		if len(recs) > 0 {
			flush()
		}
		if done {
			s.writeRecord(w, summary)
			flush()
			return http.StatusOK
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			// The tailer went away; the job keeps running — another
			// stream or poll can pick it up where this one stopped.
			// Counted apart from batchCanceled, which is reserved for
			// streams whose abandonment actually cancels work.
			s.met.jobStreamDetached.Add(1)
			return http.StatusOK
		}
	}
}

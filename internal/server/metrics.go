package server

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shelley-go/shelley/internal/mine"
	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/store"
	"github.com/shelley-go/shelley/internal/telemetry"
)

// endpointMetrics is one endpoint's request counters: status codes and
// a fine-grained latency histogram, all plain atomics. Handlers
// resolve their endpointMetrics pointer once at route-registration
// time, so the per-request observe path takes no lock and touches no
// map — the registry mutex exists only for registration and scrapes.
type endpointMetrics struct {
	name string

	// codes[c-100] counts finished requests with status c (100..599);
	// out-of-range codes clamp into the edge slots.
	codes [500]atomic.Uint64

	// lat is the request wall-time histogram in the fine telemetry
	// bucketing (16 buckets/decade, 1µs..10s). The /metrics exposition
	// rolls it up losslessly to the coarse pipeline-stats bounds via
	// telemetry.RollupIndex.
	lat [telemetry.NumLatBuckets]atomic.Uint64

	// total counts finished requests; errors the 5xx subset.
	total  atomic.Uint64
	errors atomic.Uint64
}

// observe records one finished request. Lock-free.
func (ep *endpointMetrics) observe(code int, elapsed time.Duration) {
	i := code - 100
	if i < 0 {
		i = 0
	} else if i >= len(ep.codes) {
		i = len(ep.codes) - 1
	}
	ep.codes[i].Add(1)
	ep.lat[telemetry.BucketIndex(elapsed)].Add(1)
	ep.total.Add(1)
	if code >= 500 {
		ep.errors.Add(1)
	}
}

// metrics is the daemon's observability surface: an enumerable metric
// registry rendered as a Prometheus-style text exposition on /metrics
// and snapshotted into the telemetry engine behind /v1/status. Every
// family flows through families(), so the two surfaces cannot drift.
type metrics struct {
	// epMu guards endpoint registration only; observes go through
	// pre-resolved *endpointMetrics pointers.
	epMu sync.RWMutex
	eps  map[string]*endpointMetrics

	// coalesced counts requests that piggybacked on an identical
	// in-flight request instead of executing.
	coalesced atomic.Uint64

	// moduleHits/moduleMisses count resident-module cache lookups.
	moduleHits   atomic.Uint64
	moduleMisses atomic.Uint64

	// bodyCacheHits counts check requests answered from a resident
	// module's memoized response body, skipping the worker pool.
	bodyCacheHits atomic.Uint64

	// storeBodyHits counts check requests answered from the durable
	// artifact store's persisted response bodies — the warm-restart fast
	// path, one layer below bodyCacheHits.
	storeBodyHits atomic.Uint64

	// moduleEvictions counts resident modules dropped to stay under
	// MaxModules.
	moduleEvictions atomic.Uint64

	// queueDepth and workersBusy are live pool gauges, maintained by
	// the pool itself but exposed here.
	queueDepth  atomic.Int64
	workersBusy atomic.Int64

	// inflight is the number of requests currently inside a handler.
	inflight atomic.Int64

	// timeouts[where] counts deadline expiries ("queue" — job expired
	// before a worker picked it up; "wait" — a waiter's context ended
	// first).
	timeoutQueue atomic.Uint64
	timeoutWait  atomic.Uint64

	// saturated counts submissions rejected because the queue was full
	// or the daemon was draining.
	saturated atomic.Uint64

	// panics counts verification panics contained at the pooled-job
	// boundary (answered 500; the daemon survives).
	panics atomic.Uint64

	// budgetExceeded counts requests answered with a structured
	// resource-budget error instead of unbounded work.
	budgetExceeded atomic.Uint64

	// batchItems counts batch items admitted (sync streams and jobs);
	// batchItemErrors the subset that finished with a non-200 record.
	batchItems      atomic.Uint64
	batchItemErrors atomic.Uint64

	// batchRejected counts whole batches refused by admission control
	// (429 per-client share, 503 global window), before any work ran.
	batchRejected atomic.Uint64

	// batchCanceled counts batch streams abandoned by their client
	// mid-flight (remaining items answered with canceled records).
	batchCanceled atomic.Uint64

	// jobStreamDetached counts ?stream=1 job tailers that disconnected
	// mid-tail. Unlike batchCanceled, no work is canceled — the job
	// keeps running and a later stream or poll picks it up.
	jobStreamDetached atomic.Uint64

	// batchInflightItems is the live gauge of admission charge held —
	// a sync batch's full item count, an async job's peak pool
	// occupancy — the quantity admission control bounds.
	batchInflightItems atomic.Int64

	// batchBackpressure counts batch submissions that found the pool
	// queue full and blocked (instead of shedding 503 like single
	// requests) — the stream stalls until a worker frees a slot.
	batchBackpressure atomic.Uint64

	// jobsSubmitted counts accepted async jobs; jobsActive is the live
	// gauge of jobs still running.
	jobsSubmitted atomic.Uint64
	jobsActive    atomic.Int64

	// writeErrors counts response-body writes that failed after the
	// status line was committed — the only footprint a mid-stream
	// client disconnect can leave, since a flushed response's status
	// code is immutable.
	writeErrors atomic.Uint64

	// ingestRejected counts whole /v1/ingest frames refused by ingest
	// admission control (429/503 with Retry-After) — the shed-never-block
	// contract's HTTP face; ingestInflightEvents is the live gauge of
	// admitted ingest charge (events being appended right now).
	ingestRejected       atomic.Uint64
	ingestInflightEvents atomic.Int64

	// exemplars counts requests tail-sampled into the telemetry
	// exemplar ring (latency breach, error, or panic).
	exemplars atomic.Uint64

	// watchUpdates counts published watch rounds (successful
	// POST /v1/watch pushes); watchPushes counts long-poll deliveries
	// (one per poller woken with a round); watchEvicted counts sessions
	// dropped LRU to respect MaxWatchSessions; watchSessions is the
	// live session gauge.
	watchUpdates  atomic.Uint64
	watchPushes   atomic.Uint64
	watchEvicted  atomic.Uint64
	watchSessions atomic.Int64

	// incrementalReused counts classes answered from a watch session's
	// warm cache across all rounds; incrementalChecked counts classes
	// actually re-verified. Their ratio is the edit loop's live reuse
	// rate.
	incrementalReused  atomic.Uint64
	incrementalChecked atomic.Uint64
}

func newMetrics() *metrics {
	return &metrics{eps: make(map[string]*endpointMetrics)}
}

// endpoint registers (or returns) the per-endpoint counters. Handlers
// call this once at wiring time and keep the pointer.
func (m *metrics) endpoint(name string) *endpointMetrics {
	m.epMu.RLock()
	ep, ok := m.eps[name]
	m.epMu.RUnlock()
	if ok {
		return ep
	}
	m.epMu.Lock()
	defer m.epMu.Unlock()
	if ep, ok = m.eps[name]; ok {
		return ep
	}
	ep = &endpointMetrics{name: name}
	m.eps[name] = ep
	return ep
}

// observe records one finished request by endpoint name — the
// convenience form for callers without a pre-resolved pointer.
func (m *metrics) observe(endpoint string, code int, elapsed time.Duration) {
	m.endpoint(endpoint).observe(code, elapsed)
}

// endpointsSorted snapshots the registered endpoints in name order.
func (m *metrics) endpointsSorted() []*endpointMetrics {
	m.epMu.RLock()
	out := make([]*endpointMetrics, 0, len(m.eps))
	for _, ep := range m.eps {
		out = append(out, ep)
	}
	m.epMu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// labelPair is one exposition label; samples keep them in a fixed
// order so scrapes are byte-stable.
type labelPair struct{ k, v string }

type metricSample struct {
	labels []labelPair
	value  float64
}

type metricFamily struct {
	name, help, kind string // kind is "counter" or "gauge"
	samples          []metricSample
}

// mineSnapshot carries the mining subsystem's data into families();
// nil when the daemon runs without -mine.
type mineSnapshot struct {
	counters mine.Counters
	reports  []mine.Report
}

// families enumerates every metric family with its current samples, in
// stable order. Both scrape surfaces — the /metrics exposition and the
// telemetry engine's Sample — are derived from this one enumeration.
func (m *metrics) families(ps pipeline.Stats, st *store.Store, ms *mineSnapshot) []metricFamily {
	var fams []metricFamily

	eps := m.endpointsSorted()
	reqFam := metricFamily{
		name: "shelleyd_requests_total", kind: "counter",
		help: "Finished requests by endpoint and status code.",
	}
	for _, ep := range eps {
		for i := range ep.codes {
			if n := ep.codes[i].Load(); n != 0 {
				reqFam.samples = append(reqFam.samples, metricSample{
					labels: []labelPair{{"endpoint", ep.name}, {"code", strconv.Itoa(i + 100)}},
					value:  float64(n),
				})
			}
		}
	}
	fams = append(fams, reqFam)

	durFam := metricFamily{
		name: "shelleyd_request_duration_bucket", kind: "counter",
		help: "Request wall time (pipeline-stats bucketing; le is the inclusive upper bound, +Inf the overflow bucket).",
	}
	for _, ep := range eps {
		var coarse [pipeline.NumBuckets]uint64
		for i := range ep.lat {
			coarse[telemetry.RollupIndex(i)] += ep.lat[i].Load()
		}
		var cum uint64
		for i := 0; i < pipeline.NumBuckets; i++ {
			cum += coarse[i]
			le := "+Inf"
			if bound := pipeline.BucketBound(i); bound >= 0 {
				le = bound.String()
			}
			durFam.samples = append(durFam.samples, metricSample{
				labels: []labelPair{{"endpoint", ep.name}, {"le", le}},
				value:  float64(cum),
			})
		}
	}
	fams = append(fams, durFam)

	counter := func(name, help string, v uint64) {
		fams = append(fams, metricFamily{name: name, help: help, kind: "counter",
			samples: []metricSample{{value: float64(v)}}})
	}
	gauge := func(name, help string, v int64) {
		fams = append(fams, metricFamily{name: name, help: help, kind: "gauge",
			samples: []metricSample{{value: float64(v)}}})
	}
	counter("shelleyd_coalesced_total", "Requests served by piggybacking on an identical in-flight request.", m.coalesced.Load())
	counter("shelleyd_module_cache_hits_total", "Requests served by an already-resident module.", m.moduleHits.Load())
	counter("shelleyd_check_body_cache_hits_total", "Check requests answered from a resident module's memoized response body.", m.bodyCacheHits.Load())
	counter("shelleyd_module_cache_misses_total", "Module loads (source parsed and modeled).", m.moduleMisses.Load())
	counter("shelleyd_module_cache_evictions_total", "Resident modules evicted to respect MaxModules.", m.moduleEvictions.Load())
	counter("shelleyd_timeouts_queue_total", "Jobs that expired before a worker picked them up.", m.timeoutQueue.Load())
	counter("shelleyd_timeouts_wait_total", "Waiters whose own deadline ended before the shared result.", m.timeoutWait.Load())
	counter("shelleyd_saturated_total", "Submissions rejected with 503 (queue full or draining).", m.saturated.Load())
	counter("shelleyd_panics_total", "Verification panics contained at the worker boundary (answered 500).", m.panics.Load())
	counter("shelleyd_budget_exceeded_total", "Requests answered with a structured resource-budget error.", m.budgetExceeded.Load())
	counter("shelleyd_batch_items_total", "Batch items admitted across /v1/check-batch streams and async jobs.", m.batchItems.Load())
	counter("shelleyd_batch_item_errors_total", "Batch items that finished with a non-200 record.", m.batchItemErrors.Load())
	counter("shelleyd_batch_admission_rejected_total", "Whole batches refused by admission control (429/503 with Retry-After).", m.batchRejected.Load())
	counter("shelleyd_batch_streams_canceled_total", "Batch streams abandoned by their client mid-flight.", m.batchCanceled.Load())
	counter("shelleyd_job_stream_detached_total", "Job stream tailers that disconnected mid-tail (the job keeps running).", m.jobStreamDetached.Load())
	counter("shelleyd_batch_backpressure_total", "Batch submissions that blocked on a full pool queue instead of shedding.", m.batchBackpressure.Load())
	counter("shelleyd_jobs_total", "Async verification jobs accepted via POST /v1/jobs.", m.jobsSubmitted.Load())
	counter("shelleyd_response_write_errors_total", "Response writes that failed after the status was committed (client gone).", m.writeErrors.Load())
	counter("shelleyd_exemplars_total", "Requests tail-sampled into the telemetry exemplar ring.", m.exemplars.Load())
	counter("shelleyd_watch_updates_total", "Published watch rounds (successful POST /v1/watch pushes).", m.watchUpdates.Load())
	counter("shelleyd_watch_pushes_total", "Watch rounds delivered to long-pollers (GET /v1/watch).", m.watchPushes.Load())
	counter("shelleyd_watch_sessions_evicted_total", "Watch sessions evicted (LRU) to respect MaxWatchSessions.", m.watchEvicted.Load())
	counter("shelleyd_incremental_reports_reused_total", "Classes answered from a watch session's warm cache instead of re-verifying.", m.incrementalReused.Load())
	counter("shelleyd_incremental_classes_checked_total", "Classes actually re-verified across watch rounds.", m.incrementalChecked.Load())
	gauge("shelleyd_watch_sessions", "Resident watch sessions.", m.watchSessions.Load())
	gauge("shelleyd_batch_inflight_items", "Admission charge held (sync batches by item count, jobs by pool occupancy).", m.batchInflightItems.Load())
	gauge("shelleyd_jobs_active", "Async jobs still running.", m.jobsActive.Load())
	gauge("shelleyd_queue_depth", "Jobs waiting for a worker.", m.queueDepth.Load())
	gauge("shelleyd_workers_busy", "Workers currently executing a job.", m.workersBusy.Load())
	gauge("shelleyd_inflight_requests", "Requests currently inside a handler.", m.inflight.Load())

	if st != nil {
		ss := st.Stats()
		counter("shelleyd_store_hits_total", "Artifact-store reads served from disk.", ss.Hits)
		counter("shelleyd_store_warm_hits_total", "Store hits on entries persisted before this process started (warm-restart reuse).", ss.WarmHits)
		counter("shelleyd_store_misses_total", "Store reads that found nothing servable (absent, unreadable, or corrupt).", ss.Misses)
		counter("shelleyd_store_writes_total", "Artifacts durably published (temp write, fsync, atomic rename).", ss.Writes)
		counter("shelleyd_store_errors_total", "Failed store filesystem operations, one per failed call (each degrades to recompute).", ss.Errors)
		counter("shelleyd_store_corrupt_total", "Entries that failed frame verification and were quarantined.", ss.Corrupt)
		counter("shelleyd_store_shed_total", "Write-behind requests dropped on a full queue.", ss.Shed)
		counter("shelleyd_store_evictions_total", "Entries evicted (LRU) to respect the store byte bound.", ss.Evictions)
		counter("shelleyd_store_body_hits_total", "Check requests answered from a persisted response body.", m.storeBodyHits.Load())
		counter("shelleyd_store_snapshot_imported_total", "Entries imported via PUT /v1/snapshot.", ss.Imported)
		counter("shelleyd_store_snapshot_skipped_total", "Snapshot records skipped on import (duplicate or damaged).", ss.ImportSkipped)
		gauge("shelleyd_store_entries", "Published entries in the store index.", int64(ss.Entries))
		gauge("shelleyd_store_bytes", "Total bytes of published entries.", ss.Bytes)
		degraded := int64(0)
		if st.Degraded() {
			degraded = 1
		}
		gauge("shelleyd_store_degraded", "1 when the store has seen any filesystem failure since boot (requests still succeed via recompute).", degraded)
	}

	stageFam := metricFamily{
		name: "shelleyd_pipeline_stage_total", kind: "counter",
		help: "Pipeline-cache counters aggregated over resident modules.",
	}
	for _, stg := range ps.Stages {
		for _, kv := range []struct {
			kind string
			v    uint64
		}{{"hits", stg.Hits}, {"misses", stg.Misses}, {"persist_hits", stg.PersistHits}} {
			stageFam.samples = append(stageFam.samples, metricSample{
				labels: []labelPair{{"stage", stg.Stage}, {"kind", kv.kind}},
				value:  float64(kv.v),
			})
		}
	}
	fams = append(fams, stageFam)

	if ms != nil {
		c := ms.counters
		counter("shelleyd_mine_ingested_traces_total", "Trace observations accepted into per-class corpora.", c.IngestedTraces)
		counter("shelleyd_mine_ingested_events_total", "Individual events accepted into per-class corpora.", c.IngestedEvents)
		counter("shelleyd_mine_shed_traces_total", "Trace observations dropped by a corpus or class bound (counted, never blocked).", c.ShedTraces)
		counter("shelleyd_mine_rounds_total", "Completed per-class mining rounds (L* plus drift diff).", c.Rounds)
		counter("shelleyd_mine_budget_tripped_total", "Mining rounds stopped by a resource budget or deadline.", c.BudgetTripped)
		counter("shelleyd_drift_flips_total", "Verdict transitions into DRIFT (one page per flip, not per scrape).", c.DriftFlips)
		counter("shelleyd_ingest_rejected_total", "Whole ingest frames refused by admission control (429/503 with Retry-After).", m.ingestRejected.Load())
		gauge("shelleyd_ingest_inflight_events", "Admitted ingest charge currently being appended.", m.ingestInflightEvents.Load())
		gauge("shelleyd_mine_classes", "Classes with a tracked corpus or restored mined model.", int64(len(ms.reports)))

		byVerdict := make(map[string]int, len(driftVerdicts))
		for _, r := range ms.reports {
			byVerdict[r.Verdict]++
		}
		driftFam := metricFamily{
			name: "shelleyd_drift_classes", kind: "gauge",
			help: "Tracked classes by current drift verdict.",
		}
		for _, v := range driftVerdicts {
			driftFam.samples = append(driftFam.samples, metricSample{
				labels: []labelPair{{"verdict", v}},
				value:  float64(byVerdict[v]),
			})
		}
		fams = append(fams, driftFam)
	}

	return fams
}

// render writes the exposition. pipelineStats aggregates the caches of
// every resident module, so cache behavior inside the daemon is
// scrapeable without a side channel; st (nil when persistence is off)
// contributes the shelleyd_store_* family; ms (nil without -mine) the
// mining families.
func (m *metrics) render(b *strings.Builder, pipelineStats pipeline.Stats, st *store.Store, ms *mineSnapshot) {
	for _, f := range m.families(pipelineStats, st, ms) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range f.samples {
			b.WriteString(f.name)
			writeLabels(b, s.labels)
			b.WriteByte(' ')
			b.WriteString(formatMetricValue(s.value))
			b.WriteByte('\n')
		}
	}
}

func writeLabels(b *strings.Builder, labels []labelPair) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.k)
		b.WriteString("=\"")
		b.WriteString(l.v)
		b.WriteString("\"")
	}
	b.WriteByte('}')
}

// formatMetricValue renders counts as integers (matching the historic
// %d exposition) and anything fractional as a minimal float.
func formatMetricValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1<<53 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sample converts the registry into one telemetry.Sample: scalar
// families become counter/gauge series (labeled samples keyed by their
// rendered name), per-endpoint histograms ride separately at full fine
// resolution. Called once per telemetry tick.
func (m *metrics) sample(ps pipeline.Stats, st *store.Store, ms *mineSnapshot) telemetry.Sample {
	out := telemetry.Sample{
		Counters: make(map[string]float64),
		Gauges:   make(map[string]float64),
		Hists:    make(map[string]telemetry.HistSample),
	}
	for _, f := range m.families(ps, st, ms) {
		// The request/duration families are carried by Hists below at
		// full resolution; skipping them here avoids duplicate series.
		if f.name == "shelleyd_requests_total" || f.name == "shelleyd_request_duration_bucket" {
			continue
		}
		for _, s := range f.samples {
			key := f.name
			if len(s.labels) > 0 {
				var lb strings.Builder
				writeLabels(&lb, s.labels)
				key += lb.String()
			}
			if f.kind == "gauge" {
				out.Gauges[key] = s.value
			} else {
				out.Counters[key] = s.value
			}
		}
	}
	for _, ep := range m.endpointsSorted() {
		var h telemetry.HistSample
		for i := range ep.lat {
			h.Buckets[i] = ep.lat[i].Load()
		}
		h.Total = ep.total.Load()
		h.Errors = ep.errors.Load()
		out.Hists[ep.name] = h
	}
	return out
}

// driftVerdicts is the fixed label order of the shelleyd_drift_classes
// gauge, so scrapes stay byte-stable round to round.
var driftVerdicts = []string{
	mine.VerdictPending, mine.VerdictConformant, mine.VerdictUnder,
	mine.VerdictDrift, mine.VerdictNoStatic, mine.VerdictError,
}

package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shelley-go/shelley/internal/mine"
	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/store"
)

// metrics is the daemon's observability surface, rendered as a
// Prometheus-style text exposition on /metrics. Request-latency
// histograms reuse the pipeline stats bucketing (pipeline.BucketIndex
// / BucketLabels) so daemon and cache tables line up column for
// column.
type metrics struct {
	// requests[endpoint][code] counts finished requests.
	mu       sync.Mutex
	requests map[string]map[int]uint64

	// latency[endpoint] is the request wall-time histogram.
	latency map[string]*[pipeline.NumBuckets]atomic.Uint64

	// coalesced counts requests that piggybacked on an identical
	// in-flight request instead of executing.
	coalesced atomic.Uint64

	// moduleHits/moduleMisses count resident-module cache lookups.
	moduleHits   atomic.Uint64
	moduleMisses atomic.Uint64

	// bodyCacheHits counts check requests answered from a resident
	// module's memoized response body, skipping the worker pool.
	bodyCacheHits atomic.Uint64

	// storeBodyHits counts check requests answered from the durable
	// artifact store's persisted response bodies — the warm-restart fast
	// path, one layer below bodyCacheHits.
	storeBodyHits atomic.Uint64

	// moduleEvictions counts resident modules dropped to stay under
	// MaxModules.
	moduleEvictions atomic.Uint64

	// queueDepth and workersBusy are live pool gauges, maintained by
	// the pool itself but exposed here.
	queueDepth  atomic.Int64
	workersBusy atomic.Int64

	// inflight is the number of requests currently inside a handler.
	inflight atomic.Int64

	// timeouts[where] counts deadline expiries ("queue" — job expired
	// before a worker picked it up; "wait" — a waiter's context ended
	// first).
	timeoutQueue atomic.Uint64
	timeoutWait  atomic.Uint64

	// saturated counts submissions rejected because the queue was full
	// or the daemon was draining.
	saturated atomic.Uint64

	// panics counts verification panics contained at the pooled-job
	// boundary (answered 500; the daemon survives).
	panics atomic.Uint64

	// budgetExceeded counts requests answered with a structured
	// resource-budget error instead of unbounded work.
	budgetExceeded atomic.Uint64

	// batchItems counts batch items admitted (sync streams and jobs);
	// batchItemErrors the subset that finished with a non-200 record.
	batchItems      atomic.Uint64
	batchItemErrors atomic.Uint64

	// batchRejected counts whole batches refused by admission control
	// (429 per-client share, 503 global window), before any work ran.
	batchRejected atomic.Uint64

	// batchCanceled counts batch streams abandoned by their client
	// mid-flight (remaining items answered with canceled records).
	batchCanceled atomic.Uint64

	// jobStreamDetached counts ?stream=1 job tailers that disconnected
	// mid-tail. Unlike batchCanceled, no work is canceled — the job
	// keeps running and a later stream or poll picks it up.
	jobStreamDetached atomic.Uint64

	// batchInflightItems is the live gauge of admission charge held —
	// a sync batch's full item count, an async job's peak pool
	// occupancy — the quantity admission control bounds.
	batchInflightItems atomic.Int64

	// batchBackpressure counts batch submissions that found the pool
	// queue full and blocked (instead of shedding 503 like single
	// requests) — the stream stalls until a worker frees a slot.
	batchBackpressure atomic.Uint64

	// jobsSubmitted counts accepted async jobs; jobsActive is the live
	// gauge of jobs still running.
	jobsSubmitted atomic.Uint64
	jobsActive    atomic.Int64

	// writeErrors counts response-body writes that failed after the
	// status line was committed — the only footprint a mid-stream
	// client disconnect can leave, since a flushed response's status
	// code is immutable.
	writeErrors atomic.Uint64

	// ingestRejected counts whole /v1/ingest frames refused by ingest
	// admission control (429/503 with Retry-After) — the shed-never-block
	// contract's HTTP face; ingestInflightEvents is the live gauge of
	// admitted ingest charge (events being appended right now).
	ingestRejected       atomic.Uint64
	ingestInflightEvents atomic.Int64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[string]map[int]uint64),
		latency:  make(map[string]*[pipeline.NumBuckets]atomic.Uint64),
	}
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, elapsed time.Duration) {
	m.mu.Lock()
	byCode, ok := m.requests[endpoint]
	if !ok {
		byCode = make(map[int]uint64)
		m.requests[endpoint] = byCode
	}
	byCode[code]++
	hist, ok := m.latency[endpoint]
	if !ok {
		hist = new([pipeline.NumBuckets]atomic.Uint64)
		m.latency[endpoint] = hist
	}
	m.mu.Unlock()
	hist[pipeline.BucketIndex(elapsed)].Add(1)
}

// render writes the exposition. pipelineStats aggregates the caches of
// every resident module, so cache behavior inside the daemon is
// scrapeable without a side channel; st (nil when persistence is off)
// contributes the shelleyd_store_* family.
func (m *metrics) render(b *strings.Builder, pipelineStats pipeline.Stats, st *store.Store) {
	fmt.Fprintf(b, "# HELP shelleyd_requests_total Finished requests by endpoint and status code.\n")
	fmt.Fprintf(b, "# TYPE shelleyd_requests_total counter\n")
	m.mu.Lock()
	endpoints := make([]string, 0, len(m.requests))
	for ep := range m.requests {
		endpoints = append(endpoints, ep)
	}
	sort.Strings(endpoints)
	for _, ep := range endpoints {
		codes := make([]int, 0, len(m.requests[ep]))
		for code := range m.requests[ep] {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(b, "shelleyd_requests_total{endpoint=%q,code=\"%d\"} %d\n", ep, code, m.requests[ep][code])
		}
	}

	fmt.Fprintf(b, "# HELP shelleyd_request_duration_bucket Request wall time (pipeline-stats bucketing; le is the inclusive upper bound, +Inf the overflow bucket).\n")
	fmt.Fprintf(b, "# TYPE shelleyd_request_duration_bucket counter\n")
	histEndpoints := make([]string, 0, len(m.latency))
	for ep := range m.latency {
		histEndpoints = append(histEndpoints, ep)
	}
	sort.Strings(histEndpoints)
	for _, ep := range histEndpoints {
		hist := m.latency[ep]
		var cum uint64
		for i := 0; i < pipeline.NumBuckets; i++ {
			cum += hist[i].Load()
			le := "+Inf"
			if bound := pipeline.BucketBound(i); bound >= 0 {
				le = bound.String()
			}
			fmt.Fprintf(b, "shelleyd_request_duration_bucket{endpoint=%q,le=%q} %d\n", ep, le, cum)
		}
	}
	m.mu.Unlock()

	counter := func(name, help string, v uint64) { writeCounter(b, name, help, v) }
	gauge := func(name, help string, v int64) { writeGauge(b, name, help, v) }
	counter("shelleyd_coalesced_total", "Requests served by piggybacking on an identical in-flight request.", m.coalesced.Load())
	counter("shelleyd_module_cache_hits_total", "Requests served by an already-resident module.", m.moduleHits.Load())
	counter("shelleyd_check_body_cache_hits_total", "Check requests answered from a resident module's memoized response body.", m.bodyCacheHits.Load())
	counter("shelleyd_module_cache_misses_total", "Module loads (source parsed and modeled).", m.moduleMisses.Load())
	counter("shelleyd_module_cache_evictions_total", "Resident modules evicted to respect MaxModules.", m.moduleEvictions.Load())
	counter("shelleyd_timeouts_queue_total", "Jobs that expired before a worker picked them up.", m.timeoutQueue.Load())
	counter("shelleyd_timeouts_wait_total", "Waiters whose own deadline ended before the shared result.", m.timeoutWait.Load())
	counter("shelleyd_saturated_total", "Submissions rejected with 503 (queue full or draining).", m.saturated.Load())
	counter("shelley_panics_total", "Verification panics contained at the worker boundary (answered 500).", m.panics.Load())
	counter("shelley_budget_exceeded_total", "Requests answered with a structured resource-budget error.", m.budgetExceeded.Load())
	counter("shelleyd_batch_items_total", "Batch items admitted across /v1/check-batch streams and async jobs.", m.batchItems.Load())
	counter("shelleyd_batch_item_errors_total", "Batch items that finished with a non-200 record.", m.batchItemErrors.Load())
	counter("shelleyd_batch_admission_rejected_total", "Whole batches refused by admission control (429/503 with Retry-After).", m.batchRejected.Load())
	counter("shelleyd_batch_streams_canceled_total", "Batch streams abandoned by their client mid-flight.", m.batchCanceled.Load())
	counter("shelleyd_job_stream_detached_total", "Job stream tailers that disconnected mid-tail (the job keeps running).", m.jobStreamDetached.Load())
	counter("shelleyd_batch_backpressure_total", "Batch submissions that blocked on a full pool queue instead of shedding.", m.batchBackpressure.Load())
	counter("shelleyd_jobs_total", "Async verification jobs accepted via POST /v1/jobs.", m.jobsSubmitted.Load())
	counter("shelleyd_response_write_errors_total", "Response writes that failed after the status was committed (client gone).", m.writeErrors.Load())
	gauge("shelleyd_batch_inflight_items", "Admission charge held (sync batches by item count, jobs by pool occupancy).", m.batchInflightItems.Load())
	gauge("shelleyd_jobs_active", "Async jobs still running.", m.jobsActive.Load())
	gauge("shelleyd_queue_depth", "Jobs waiting for a worker.", m.queueDepth.Load())
	gauge("shelleyd_workers_busy", "Workers currently executing a job.", m.workersBusy.Load())
	gauge("shelleyd_inflight_requests", "Requests currently inside a handler.", m.inflight.Load())

	if st != nil {
		ss := st.Stats()
		counter("shelleyd_store_hits_total", "Artifact-store reads served from disk.", ss.Hits)
		counter("shelleyd_store_warm_hits_total", "Store hits on entries persisted before this process started (warm-restart reuse).", ss.WarmHits)
		counter("shelleyd_store_misses_total", "Store reads that found nothing servable (absent, unreadable, or corrupt).", ss.Misses)
		counter("shelleyd_store_writes_total", "Artifacts durably published (temp write, fsync, atomic rename).", ss.Writes)
		counter("shelleyd_store_errors_total", "Failed store filesystem operations, one per failed call (each degrades to recompute).", ss.Errors)
		counter("shelleyd_store_corrupt_total", "Entries that failed frame verification and were quarantined.", ss.Corrupt)
		counter("shelleyd_store_shed_total", "Write-behind requests dropped on a full queue.", ss.Shed)
		counter("shelleyd_store_evictions_total", "Entries evicted (LRU) to respect the store byte bound.", ss.Evictions)
		counter("shelleyd_store_body_hits_total", "Check requests answered from a persisted response body.", m.storeBodyHits.Load())
		counter("shelleyd_store_snapshot_imported_total", "Entries imported via PUT /v1/snapshot.", ss.Imported)
		counter("shelleyd_store_snapshot_skipped_total", "Snapshot records skipped on import (duplicate or damaged).", ss.ImportSkipped)
		gauge("shelleyd_store_entries", "Published entries in the store index.", int64(ss.Entries))
		gauge("shelleyd_store_bytes", "Total bytes of published entries.", ss.Bytes)
		degraded := int64(0)
		if st.Degraded() {
			degraded = 1
		}
		gauge("shelleyd_store_degraded", "1 when the store has seen any filesystem failure since boot (requests still succeed via recompute).", degraded)
	}

	fmt.Fprintf(b, "# HELP shelleyd_pipeline_stage_total Pipeline-cache counters aggregated over resident modules.\n")
	fmt.Fprintf(b, "# TYPE shelleyd_pipeline_stage_total counter\n")
	for _, st := range pipelineStats.Stages {
		fmt.Fprintf(b, "shelleyd_pipeline_stage_total{stage=%q,kind=\"hits\"} %d\n", st.Stage, st.Hits)
		fmt.Fprintf(b, "shelleyd_pipeline_stage_total{stage=%q,kind=\"misses\"} %d\n", st.Stage, st.Misses)
		fmt.Fprintf(b, "shelleyd_pipeline_stage_total{stage=%q,kind=\"persist_hits\"} %d\n", st.Stage, st.PersistHits)
	}
}

func writeCounter(b *strings.Builder, name, help string, v uint64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
}

func writeGauge(b *strings.Builder, name, help string, v int64) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
}

// driftVerdicts is the fixed label order of the shelleyd_drift_classes
// gauge, so scrapes stay byte-stable round to round.
var driftVerdicts = []string{
	mine.VerdictPending, mine.VerdictConformant, mine.VerdictUnder,
	mine.VerdictDrift, mine.VerdictNoStatic, mine.VerdictError,
}

// renderMine appends the shelleyd_mine_* / shelleyd_drift_* families —
// the mining subsystem's scrape surface, rendered only on daemons
// started with mining enabled.
func (m *metrics) renderMine(b *strings.Builder, c mine.Counters, reports []mine.Report) {
	writeCounter(b, "shelleyd_mine_ingested_traces_total", "Trace observations accepted into per-class corpora.", c.IngestedTraces)
	writeCounter(b, "shelleyd_mine_ingested_events_total", "Individual events accepted into per-class corpora.", c.IngestedEvents)
	writeCounter(b, "shelleyd_mine_shed_traces_total", "Trace observations dropped by a corpus or class bound (counted, never blocked).", c.ShedTraces)
	writeCounter(b, "shelleyd_mine_rounds_total", "Completed per-class mining rounds (L* plus drift diff).", c.Rounds)
	writeCounter(b, "shelleyd_mine_budget_tripped_total", "Mining rounds stopped by a resource budget or deadline.", c.BudgetTripped)
	writeCounter(b, "shelleyd_drift_flips_total", "Verdict transitions into DRIFT (one page per flip, not per scrape).", c.DriftFlips)
	writeCounter(b, "shelleyd_ingest_rejected_total", "Whole ingest frames refused by admission control (429/503 with Retry-After).", m.ingestRejected.Load())
	writeGauge(b, "shelleyd_ingest_inflight_events", "Admitted ingest charge currently being appended.", m.ingestInflightEvents.Load())
	writeGauge(b, "shelleyd_mine_classes", "Classes with a tracked corpus or restored mined model.", int64(len(reports)))

	byVerdict := make(map[string]int, len(driftVerdicts))
	for _, r := range reports {
		byVerdict[r.Verdict]++
	}
	fmt.Fprintf(b, "# HELP shelleyd_drift_classes Tracked classes by current drift verdict.\n")
	fmt.Fprintf(b, "# TYPE shelleyd_drift_classes gauge\n")
	for _, v := range driftVerdicts {
		fmt.Fprintf(b, "shelleyd_drift_classes{verdict=%q} %d\n", v, byVerdict[v])
	}
}

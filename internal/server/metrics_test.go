package server

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/shelley-go/shelley/internal/mine"
	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/telemetry"
)

// goldenMetrics builds a registry with a deterministic, hand-placed set
// of observations covering every labeled family shape: multiple
// endpoints, multiple status codes, latencies spanning several coarse
// buckets plus the +Inf overflow, scalar counters, gauges, pipeline
// stages, and the mine families.
func goldenMetrics() (*metrics, pipeline.Stats, *mineSnapshot) {
	m := newMetrics()

	m.observe("check", 200, 50*time.Microsecond)
	m.observe("check", 200, 50*time.Microsecond)
	m.observe("check", 200, 400*time.Microsecond)
	m.observe("check", 200, 5*time.Millisecond)
	m.observe("check", 422, 80*time.Microsecond)
	m.observe("check", 500, 2*time.Second)
	m.observe("check", 504, 15*time.Second) // overflow bucket
	m.observe("trace", 200, 30*time.Millisecond)
	m.observe("trace", 400, 200*time.Millisecond)

	m.coalesced.Store(3)
	m.moduleHits.Store(7)
	m.moduleMisses.Store(2)
	m.bodyCacheHits.Store(4)
	m.moduleEvictions.Store(1)
	m.timeoutQueue.Store(1)
	m.timeoutWait.Store(2)
	m.saturated.Store(5)
	m.panics.Store(1)
	m.budgetExceeded.Store(2)
	m.batchItems.Store(9)
	m.batchItemErrors.Store(1)
	m.batchRejected.Store(1)
	m.batchCanceled.Store(1)
	m.jobStreamDetached.Store(1)
	m.batchBackpressure.Store(2)
	m.jobsSubmitted.Store(3)
	m.writeErrors.Store(1)
	m.exemplars.Store(6)
	m.batchInflightItems.Store(4)
	m.jobsActive.Store(1)
	m.queueDepth.Store(2)
	m.workersBusy.Store(3)
	m.inflight.Store(1)
	m.ingestRejected.Store(2)
	m.ingestInflightEvents.Store(8)

	ps := (*pipeline.Cache)(nil).Stats() // all stage names, zero counts
	ps.Stages[0].Hits = 11
	ps.Stages[0].Misses = 2
	ps.Stages[1].PersistHits = 5

	ms := &mineSnapshot{
		counters: mine.Counters{
			IngestedEvents: 120,
			IngestedTraces: 40,
			ShedTraces:     3,
			Rounds:         6,
			BudgetTripped:  1,
			DriftFlips:     2,
		},
		reports: []mine.Report{
			{ClassFP: "a", Verdict: mine.VerdictConformant},
			{ClassFP: "b", Verdict: mine.VerdictDrift},
			{ClassFP: "c", Verdict: mine.VerdictPending},
		},
	}
	return m, ps, ms
}

// TestMetricsExpositionGolden pins the exact /metrics bytes for a fixed
// registry state. Any change to family names, HELP text, label order,
// or value formatting shows up as a diff here — renames (like the
// shelley_→shelleyd_ move) must be deliberate. Regenerate with:
//
//	go test ./internal/server -run TestMetricsExpositionGolden -update
func TestMetricsExpositionGolden(t *testing.T) {
	m, ps, ms := goldenMetrics()
	var b strings.Builder
	m.render(&b, ps, nil, ms)

	path := filepath.Join("..", "..", "testdata", "golden", "metrics.txt")
	got := []byte(b.String())
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if string(got) != string(want) {
		t.Errorf("exposition drifted from golden file (run with -update if intended):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// TestMetricsPromlint is a promlint-style conformance pass over the
// full family enumeration: naming, HELP/TYPE presence, counter suffix
// conventions, label-order stability, and no duplicate families. It
// runs against the same fixed registry the golden test uses, so every
// family (including mine and pipeline) is exercised.
func TestMetricsPromlint(t *testing.T) {
	m, ps, ms := goldenMetrics()
	fams := m.families(ps, nil, ms)
	if len(fams) == 0 {
		t.Fatal("families() returned nothing")
	}

	seen := make(map[string]bool)
	for _, f := range fams {
		if seen[f.name] {
			t.Errorf("duplicate family %s", f.name)
		}
		seen[f.name] = true

		if !metricNameRe.MatchString(f.name) {
			t.Errorf("family %s: invalid metric name", f.name)
		}
		if !strings.HasPrefix(f.name, "shelleyd_") {
			// The un-prefixed shelley_* aliases were removed after their
			// one-release deprecation window; every family carries the
			// daemon namespace now.
			t.Errorf("family %s: missing shelleyd_ namespace prefix", f.name)
		}
		if f.help == "" {
			t.Errorf("family %s: empty HELP", f.name)
		}
		switch f.kind {
		case "counter":
			// Counters end _total; the one exception is the cumulative
			// histogram-bucket family, which follows the Prometheus
			// _bucket{le=...} convention instead.
			if !strings.HasSuffix(f.name, "_total") && !strings.HasSuffix(f.name, "_bucket") {
				t.Errorf("counter %s: name must end _total (or _bucket for cumulative histograms)", f.name)
			}
		case "gauge":
			if strings.HasSuffix(f.name, "_total") {
				t.Errorf("gauge %s: _total suffix is reserved for counters", f.name)
			}
		default:
			t.Errorf("family %s: unknown kind %q", f.name, f.kind)
		}

		// Every sample in a family must carry the same label keys in the
		// same order — that is what makes scrapes byte-stable.
		var keys []string
		for i, s := range f.samples {
			var sk []string
			for _, l := range s.labels {
				if !metricNameRe.MatchString(l.k) {
					t.Errorf("family %s: invalid label name %q", f.name, l.k)
				}
				if strings.ContainsAny(l.v, "\"\n\\") {
					t.Errorf("family %s: label %s=%q needs escaping the renderer does not do", f.name, l.k, l.v)
				}
				sk = append(sk, l.k)
			}
			if i == 0 {
				keys = sk
				continue
			}
			if strings.Join(sk, ",") != strings.Join(keys, ",") {
				t.Errorf("family %s: label keys %v differ from first sample's %v", f.name, sk, keys)
			}
		}
	}

	// The rendered text must introduce every family with HELP then TYPE
	// before its first sample, and never interleave families.
	var b strings.Builder
	m.render(&b, ps, nil, ms)
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	introduced := make(map[string]bool)
	current := ""
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			if introduced[name] {
				t.Errorf("line %d: family %s introduced twice", i+1, name)
			}
			introduced[name] = true
			if i+1 >= len(lines) || !strings.HasPrefix(lines[i+1], "# TYPE "+name+" ") {
				t.Errorf("line %d: HELP %s not followed by its TYPE line", i+1, name)
			}
			current = name
			i++ // skip the TYPE line
			continue
		}
		name := line
		if j := strings.IndexAny(line, "{ "); j >= 0 {
			name = line[:j]
		}
		if name != current {
			t.Errorf("line %d: sample %s outside its family block (current %s)", i+1, name, current)
		}
		if !introduced[name] {
			t.Errorf("line %d: sample for %s before its HELP/TYPE", i+1, name)
		}
	}
}

// TestMetricsSampleMatchesFamilies pins the families→telemetry.Sample
// bridge: every scalar family lands in Counters/Gauges under its
// rendered key, and the per-endpoint fine histograms carry the same
// totals the request family shows.
func TestMetricsSampleMatchesFamilies(t *testing.T) {
	m, ps, ms := goldenMetrics()
	s := m.sample(ps, nil, ms)

	if got := s.Counters["shelleyd_panics_total"]; got != 1 {
		t.Errorf("panics counter = %v, want 1", got)
	}
	if got := s.Counters[`shelleyd_pipeline_stage_total{stage="`+ps.Stages[0].Stage+`",kind="hits"}`]; got != 11 {
		t.Errorf("labeled stage counter = %v, want 11", got)
	}
	if got := s.Gauges["shelleyd_queue_depth"]; got != 2 {
		t.Errorf("queue depth gauge = %v, want 2", got)
	}
	h, ok := s.Hists["check"]
	if !ok {
		t.Fatal("no check histogram in sample")
	}
	if h.Total != 7 || h.Errors != 2 {
		t.Errorf("check hist total/errors = %d/%d, want 7/2", h.Total, h.Errors)
	}
	var sum uint64
	for _, n := range h.Buckets {
		sum += n
	}
	if sum != h.Total {
		t.Errorf("bucket sum %d != total %d", sum, h.Total)
	}
	if s.Hists["trace"].Total != 2 {
		t.Errorf("trace hist total = %d, want 2", s.Hists["trace"].Total)
	}
	// The fine histogram must roll up to the same coarse counts the
	// exposition's _bucket family renders.
	var coarse [pipeline.NumBuckets]uint64
	for i, n := range h.Buckets {
		coarse[telemetry.RollupIndex(i)] += n
	}
	if coarse[pipeline.NumBuckets-1] != 2 { // the 2s and 15s observes, both >100ms
		t.Errorf("overflow coarse bucket = %d, want 2", coarse[pipeline.NumBuckets-1])
	}
}

// BenchmarkMetricsObserveParallel measures the per-request hot path
// under contention. The pre-refactor mutex registry ran ≈37 ns/op here;
// the atomic registry must not regress (it measures ≈4 ns/op).
func BenchmarkMetricsObserveParallel(b *testing.B) {
	m := newMetrics()
	ep := m.endpoint("check")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ep.observe(200, 250*time.Microsecond)
		}
	})
}

// BenchmarkMetricsObserveByName is the convenience path: one RLock-ed
// map lookup plus the atomic observe — what a handler without a
// pre-resolved pointer would pay.
func BenchmarkMetricsObserveByName(b *testing.B) {
	m := newMetrics()
	m.endpoint("check")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.observe("check", 200, 250*time.Microsecond)
		}
	})
}

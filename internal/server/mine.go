package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/mine"
	"github.com/shelley-go/shelley/internal/obs"
)

// handleIngest is POST /v1/ingest: one NDJSON frame of trace
// observations ({class_fp, device, events, status} per line). The whole
// frame is decoded (bounded by MaxIngestBytes, per-line caps inside),
// admitted as a unit against the ingest admission window, then appended
// to the per-class corpora. Nothing here ever blocks on mining or on a
// full buffer: admission refusal is a clean 429/503 with Retry-After,
// corpus overflow is shed-and-count, and malformed lines are skipped so
// one buggy reporter cannot poison a fleet's frame.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) int {
	if s.miner == nil {
		return s.writeError(w, http.StatusNotFound, "mining disabled; start shelleyd with -mine")
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "2")
		return s.writeError(w, http.StatusServiceUnavailable, "daemon is draining")
	}
	var evs []mine.Event
	charge := 0
	st, err := mine.DecodeFrame(http.MaxBytesReader(w, r.Body, s.cfg.MaxIngestBytes), mine.DecodeLimits{}, func(ev mine.Event) {
		evs = append(evs, ev)
		charge += max(1, len(ev.Events))
	})
	if err != nil {
		return s.writeError(w, http.StatusBadRequest, "reading ingest frame: "+err.Error())
	}
	release, status, retryAfter := s.ingestAdm.admit(clientKey(r), charge)
	if status != 0 {
		msg := "per-client ingest share exhausted; retry after backoff"
		switch status {
		case http.StatusServiceUnavailable:
			msg = "ingest window saturated; retry after backoff"
		case http.StatusRequestEntityTooLarge:
			msg = fmt.Sprintf("ingest frame charge of %d events exceeds the admission window and can never be admitted; split the frame", charge)
		}
		if retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
		}
		return s.writeError(w, status, msg)
	}
	defer release()
	resp := client.IngestResponse{Received: len(evs), Malformed: st.Malformed, Oversize: st.Oversize}
	for i := range evs {
		if s.miner.Ingest(evs[i]).Accepted {
			resp.Accepted++
		} else {
			resp.Shed++
		}
	}
	code, body := jsonBody(resp)
	return s.writeRaw(w, code, body)
}

// handleDrift is GET /v1/drift: every tracked class's current drift
// report, optionally filtered to one class fingerprint (?class=).
// Reports are served from the last completed mining round — the handler
// never learns, so drift is always a cheap read.
func (s *Server) handleDrift(w http.ResponseWriter, r *http.Request) int {
	if s.miner == nil {
		return s.writeError(w, http.StatusNotFound, "mining disabled; start shelleyd with -mine")
	}
	reports := s.miner.Reports()
	if class := r.URL.Query().Get("class"); class != "" {
		filtered := reports[:0]
		for _, rep := range reports {
			if rep.ClassFP == class {
				filtered = append(filtered, rep)
			}
		}
		reports = filtered
	}
	code, body := jsonBody(client.DriftResponse{Reports: reports})
	return s.writeRaw(w, code, body)
}

// mineLoop is the background learner: every MineInterval it re-mines
// the classes whose observed language grew and re-diffs them against
// the static models. It exits when mineCtx is canceled (Shutdown).
func (s *Server) mineLoop() {
	defer close(s.mineDone)
	t := time.NewTicker(s.cfg.MineInterval)
	defer t.Stop()
	for {
		select {
		case <-s.mineCtx.Done():
			return
		case <-t.C:
			s.mineOnce()
		}
	}
}

// mineOnce runs one mining round under the daemon's resource budget and
// request timeout, wrapped in its own root span so round latency and
// per-class learning cost land in the trace ring alongside request
// spans.
func (s *Server) mineOnce() mine.RoundStats {
	ctx, cancel := context.WithTimeout(s.mineCtx, s.cfg.RequestTimeout)
	defer cancel()
	ctx = budget.With(ctx, s.cfg.Limits)
	var span *obs.Span
	if s.tracer != nil {
		ctx, span = s.tracer.StartRoot(ctx, "mine.round", obs.NewTraceID())
	}
	start := time.Now()
	st := s.miner.MineRound(ctx, s.resolveStatic)
	span.SetAttr(obs.Int("mined", st.Mined), obs.Int("skipped", st.Skipped), obs.Int("errors", st.Errors))
	span.End()
	if s.logger != nil && (st.Mined > 0 || st.Errors > 0) {
		s.logger.LogAttrs(ctx, slog.LevelInfo, "mine round",
			slog.Int("mined", st.Mined),
			slog.Int("skipped", st.Skipped),
			slog.Int("errors", st.Errors),
			slog.Duration("duration", time.Since(start)))
	}
	return st
}

// stopMiner cancels the mining loop (aborting any round in progress)
// and waits for it to exit. Idempotent; a no-op on daemons without
// mining.
func (s *Server) stopMiner() {
	if s.miner == nil {
		return
	}
	s.mineStopOnce.Do(s.mineCancel)
	<-s.mineDone
}

// resolveStatic maps a class fingerprint ("<module-fp>/<Class>") to its
// statically inferred specification DFA. Only settled resident modules
// resolve — the miner must never trigger a module load — so a class
// whose module was evicted (or never uploaded) reports no-static-model
// until a check request brings the module back.
func (s *Server) resolveStatic(classFP string) (*automata.DFA, bool) {
	slash := strings.IndexByte(classFP, '/')
	if slash <= 0 {
		return nil, false
	}
	fp, class := classFP[:slash], classFP[slash+1:]
	e := s.modules.settled(fp)
	if e == nil {
		return nil, false
	}
	cls, ok := e.mod.Class(class)
	if !ok {
		return nil, false
	}
	spec, err := cls.SpecDFA("")
	if err != nil {
		return nil, false
	}
	return spec, true
}

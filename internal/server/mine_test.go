package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/mine"
	"github.com/shelley-go/shelley/internal/store"
)

// valveSpec loads testdata/valve.py directly and returns its source,
// class fingerprint, and spec DFA — the ground truth the mining tests
// sample conforming traffic from and judge verdicts against.
func valveSpec(t *testing.T) (source, classFP string, spec *shelley.DFA) {
	t.Helper()
	source = readTestdata(t, "valve.py")
	mod, err := shelley.LoadSource(source)
	if err != nil {
		t.Fatal(err)
	}
	cls, ok := mod.Class("Valve")
	if !ok {
		t.Fatal("Valve class missing from valve.py")
	}
	spec, err = cls.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	return source, client.Fingerprint(source) + "/Valve", spec
}

// offModelTrace returns a shortest non-empty trace the spec rejects.
func offModelTrace(t *testing.T, spec *shelley.DFA) []string {
	t.Helper()
	for _, cand := range spec.Complement().EnumerateAccepted(4) {
		if len(cand) > 0 {
			return cand
		}
	}
	t.Fatal("spec accepts every short trace; cannot inject drift")
	return nil
}

func TestIngestAndDrift404WithoutMine(t *testing.T) {
	t.Parallel()
	_, cl := startServer(t, Config{Workers: 1})
	ctx := context.Background()
	if _, err := cl.Ingest(ctx, []client.IngestEvent{{ClassFP: "x/Y", Events: []string{"a"}}}); err == nil {
		t.Fatal("ingest succeeded on a daemon without -mine")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 404 {
		t.Fatalf("ingest without mining: %v, want 404", err)
	}
	if _, err := cl.Drift(ctx, ""); err == nil {
		t.Fatal("drift succeeded on a daemon without -mine")
	} else if apiErr, ok := err.(*client.APIError); !ok || apiErr.StatusCode != 404 {
		t.Fatalf("drift without mining: %v, want 404", err)
	}
}

// TestMineDriftEndToEnd is the subsystem's happy-path acceptance test:
// conforming fleet traffic mines to a healthy verdict, one drifting
// device flips it to DRIFT with a minimal counterexample the static
// model rejects, and both states are visible through /v1/drift and
// /metrics.
func TestMineDriftEndToEnd(t *testing.T) {
	t.Parallel()
	// A long interval keeps the background loop out of the way; rounds
	// run deterministically via mineOnce.
	srv, cl := startServer(t, Config{Workers: 2, Mine: true, MineInterval: time.Hour})
	ctx := context.Background()
	source, classFP, spec := valveSpec(t)

	// Make the module resident so the miner can resolve the static model.
	if _, err := cl.Check(ctx, client.CheckRequest{Source: source}); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	var events []client.IngestEvent
	for i := 0; i < 32; i++ {
		tr, ok := spec.RandomAccepted(rng, 12)
		if !ok {
			t.Fatal("valve spec accepts nothing within length 12")
		}
		events = append(events, client.IngestEvent{
			ClassFP: classFP,
			Device:  fmt.Sprintf("dev-%d", i%8),
			Events:  tr,
			Status:  "ok",
		})
	}
	resp, err := cl.Ingest(ctx, events)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Received != len(events) || resp.Accepted == 0 {
		t.Fatalf("ingest response %+v for %d conforming observations", resp, len(events))
	}

	if st := srv.mineOnce(); st.Errors != 0 || st.Mined != 1 {
		t.Fatalf("first round stats %+v", st)
	}
	dr, err := cl.Drift(ctx, classFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Reports) != 1 {
		t.Fatalf("drift reports %+v, want exactly one for %s", dr.Reports, classFP)
	}
	rep := dr.Reports[0]
	if rep.Verdict != mine.VerdictConformant && rep.Verdict != mine.VerdictUnder {
		t.Fatalf("conforming traffic verdict %q (%+v)", rep.Verdict, rep)
	}

	// One drifting device, one off-model trace.
	drifting := offModelTrace(t, spec)
	if _, err := cl.Ingest(ctx, []client.IngestEvent{{ClassFP: classFP, Device: "rogue", Events: drifting, Status: "ok"}}); err != nil {
		t.Fatal(err)
	}
	if st := srv.mineOnce(); st.Errors != 0 || st.Mined != 1 {
		t.Fatalf("drift round stats %+v", st)
	}
	dr, err = cl.Drift(ctx, classFP)
	if err != nil {
		t.Fatal(err)
	}
	rep = dr.Reports[0]
	if rep.Verdict != mine.VerdictDrift {
		t.Fatalf("injected off-model trace %v: verdict %q, want DRIFT (%+v)", drifting, rep.Verdict, rep)
	}
	if len(rep.Counterexample) == 0 || spec.Accepts(rep.Counterexample) {
		t.Fatalf("DRIFT counterexample %v should be non-empty and rejected by the spec", rep.Counterexample)
	}
	if len(rep.Counterexample) > len(drifting) {
		t.Fatalf("counterexample %v longer than injected trace %v", rep.Counterexample, drifting)
	}

	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for metric, want := range map[string]float64{
		`shelleyd_drift_classes{verdict="DRIFT"}`: 1,
		"shelleyd_drift_flips_total":              1,
		"shelleyd_mine_classes":                   1,
	} {
		if v, ok := client.ParseMetric(metrics, metric); !ok || v != want {
			t.Fatalf("%s = %v (present %v), want %v", metric, v, ok, want)
		}
	}
	if v, ok := client.ParseMetric(metrics, "shelleyd_mine_ingested_traces_total"); !ok || v == 0 {
		t.Fatalf("shelleyd_mine_ingested_traces_total = %v (present %v), want > 0", v, ok)
	}
}

// TestDriftFlaggedWithinOneInterval exercises the real background loop:
// with the module resident and drifting traffic ingested, the verdict
// must flip to DRIFT within a couple of mining intervals — no manual
// round driving.
func TestDriftFlaggedWithinOneInterval(t *testing.T) {
	t.Parallel()
	interval := 25 * time.Millisecond
	_, cl := startServer(t, Config{Workers: 2, Mine: true, MineInterval: interval})
	ctx := context.Background()
	source, classFP, spec := valveSpec(t)
	if _, err := cl.Check(ctx, client.CheckRequest{Source: source}); err != nil {
		t.Fatal(err)
	}
	events := []client.IngestEvent{
		{ClassFP: classFP, Device: "dev-0", Events: []string{"test", "clean"}, Status: "ok"},
		{ClassFP: classFP, Device: "rogue", Events: offModelTrace(t, spec), Status: "ok"},
	}
	if _, err := cl.Ingest(ctx, events); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		dr, err := cl.Drift(ctx, classFP)
		if err != nil {
			t.Fatal(err)
		}
		if len(dr.Reports) == 1 && dr.Reports[0].Verdict == mine.VerdictDrift {
			if len(dr.Reports[0].Counterexample) == 0 {
				t.Fatalf("DRIFT without counterexample: %+v", dr.Reports[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("drift not flagged %v after ingest (interval %v): %+v", 10*time.Second, interval, dr.Reports)
		}
		time.Sleep(interval / 2)
	}
}

// TestIngestShedsNeverBlocks pins the overload contract from both
// directions: a frame larger than the client's whole admission share —
// inadmissible even against an idle window, so retrying could never
// succeed — is refused whole with a terminal 413 and no Retry-After
// (nothing ingested, nothing blocked), and corpus overflow under a
// tiny bound sheds observations while the request still answers 200
// immediately.
func TestIngestShedsNeverBlocks(t *testing.T) {
	t.Parallel()
	_, cl := startServer(t, Config{
		Workers:         1,
		Mine:            true,
		MineInterval:    time.Hour,
		MaxClientEvents: 8,
		MineConfig:      mine.Config{Corpus: mine.CorpusConfig{MaxTraces: 2}},
	})
	ctx := context.Background()

	// 5 observations × 3 events = charge 15 > the whole share of 8:
	// never admissible, whole-frame terminal 413.
	var big []client.IngestEvent
	for i := 0; i < 5; i++ {
		big = append(big, client.IngestEvent{ClassFP: "fp/V", Events: []string{"a", "b", "c"}})
	}
	start := time.Now()
	_, err := cl.Ingest(ctx, big)
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("never-admissible frame: %v, want 413", err)
	}
	if apiErr.RetryAfter != 0 || apiErr.Temporary() {
		t.Fatalf("413 RetryAfter=%v Temporary=%v; a terminal refusal must not invite retries", apiErr.RetryAfter, apiErr.Temporary())
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("refusal took %v; ingest must shed, not block", elapsed)
	}

	// Distinct traces beyond MaxTraces=2 shed inside an admitted frame.
	var distinct []client.IngestEvent
	for i := 0; i < 6; i++ {
		distinct = append(distinct, client.IngestEvent{ClassFP: "fp/V", Events: []string{fmt.Sprintf("op%d", i)}})
	}
	resp, err := cl.Ingest(ctx, distinct)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 2 || resp.Shed != 4 {
		t.Fatalf("corpus bound MaxTraces=2: response %+v, want 2 accepted / 4 shed", resp)
	}
}

// TestMineSoakConformingFleet is the acceptance soak: 64 devices
// streaming conforming valve traffic concurrently against the real
// mining loop must never produce a DRIFT verdict — the three-layer
// equivalence oracle guarantees the mined model is exactly the observed
// sub-language of the spec. Runs under -race in CI.
func TestMineSoakConformingFleet(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("soak test")
	}
	srv, cl := startServer(t, Config{Workers: 2, Mine: true, MineInterval: 10 * time.Millisecond})
	ctx := context.Background()
	source, classFP, spec := valveSpec(t)
	if _, err := cl.Check(ctx, client.CheckRequest{Source: source}); err != nil {
		t.Fatal(err)
	}

	const devices = 64
	var wg sync.WaitGroup
	errs := make(chan error, devices)
	addr := "http://" + srv.Addr()
	for d := 0; d < devices; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(d) + 100))
			dcl := client.New(addr,
				client.WithToken(fmt.Sprintf("device-%d", d)),
				client.WithRetry(client.RetryPolicy{}))
			for i := 0; i < 12; i++ {
				tr, ok := spec.RandomAccepted(rng, 16)
				if !ok {
					errs <- fmt.Errorf("device %d: no accepted trace", d)
					return
				}
				if _, err := dcl.Ingest(ctx, []client.IngestEvent{{
					ClassFP: classFP,
					Device:  fmt.Sprintf("dev-%02d", d),
					Events:  tr,
					Status:  "ok",
				}}); err != nil {
					errs <- fmt.Errorf("device %d: %w", d, err)
					return
				}
				// Interleave with the mining loop so rounds observe the
				// corpus mid-growth, not only at rest.
				time.Sleep(time.Millisecond)
			}
		}(d)
	}

	// Poll verdicts while the fleet streams: DRIFT at any point fails.
	soakDone := make(chan struct{})
	go func() { wg.Wait(); close(soakDone) }()
	for polling := true; polling; {
		select {
		case <-soakDone:
			polling = false
		case <-time.After(20 * time.Millisecond):
		}
		dr, err := cl.Drift(ctx, classFP)
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range dr.Reports {
			if rep.Verdict == mine.VerdictDrift {
				t.Fatalf("conforming fleet drifted mid-soak: %+v", rep)
			}
		}
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Let the loop settle the final corpus, then check the terminal state.
	time.Sleep(50 * time.Millisecond)
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := client.ParseMetric(metrics, "shelleyd_drift_flips_total"); v != 0 {
		t.Fatalf("shelleyd_drift_flips_total = %v after conforming soak, want 0", v)
	}
	if v, ok := client.ParseMetric(metrics, "shelleyd_mine_rounds_total"); !ok || v == 0 {
		t.Fatalf("shelleyd_mine_rounds_total = %v (present %v); the loop never mined", v, ok)
	}
	dr, err := cl.Drift(ctx, classFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Reports) != 1 {
		t.Fatalf("reports %+v, want one", dr.Reports)
	}
	if v := dr.Reports[0].Verdict; v != mine.VerdictConformant && v != mine.VerdictUnder {
		t.Fatalf("terminal verdict %q (%+v)", v, dr.Reports[0])
	}
	if dr.Reports[0].Devices == 0 {
		t.Fatalf("no devices recorded: %+v", dr.Reports[0])
	}
}

// TestMinedModelsSurviveRestart: a daemon with a store persists mined
// models and verdicts; a fresh daemon over the same store serves them
// warm before any new traffic, and fresh traffic clears the warm flag.
func TestMinedModelsSurviveRestart(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	source, classFP, spec := valveSpec(t)
	drifting := offModelTrace(t, spec)

	srv1, cl1 := startServer(t, Config{Workers: 1, Mine: true, MineInterval: time.Hour, Store: st})
	ctx := context.Background()
	if _, err := cl1.Check(ctx, client.CheckRequest{Source: source}); err != nil {
		t.Fatal(err)
	}
	events := []client.IngestEvent{
		{ClassFP: classFP, Device: "dev-0", Events: []string{"test", "clean"}, Status: "ok"},
		{ClassFP: classFP, Device: "rogue", Events: drifting, Status: "ok"},
	}
	if _, err := cl1.Ingest(ctx, events); err != nil {
		t.Fatal(err)
	}
	if rs := srv1.mineOnce(); rs.Errors != 0 {
		t.Fatalf("round stats %+v", rs)
	}
	dr, err := cl1.Drift(ctx, classFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Reports) != 1 || dr.Reports[0].Verdict != mine.VerdictDrift {
		t.Fatalf("pre-restart reports %+v, want DRIFT", dr.Reports)
	}
	shutCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if err := srv1.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	cancel()
	st.Close()

	// Process restart: new store over the same directory, new daemon.
	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close() })
	srv2, cl2 := startServer(t, Config{Workers: 1, Mine: true, MineInterval: time.Hour, Store: st2})
	dr, err = cl2.Drift(ctx, classFP)
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Reports) != 1 {
		t.Fatalf("post-restart reports %+v, want one", dr.Reports)
	}
	rep := dr.Reports[0]
	if rep.Verdict != mine.VerdictDrift || !rep.Warm {
		t.Fatalf("post-restart report %+v, want warm DRIFT", rep)
	}
	if len(rep.Counterexample) == 0 {
		t.Fatalf("restored DRIFT lost its counterexample: %+v", rep)
	}

	// Fresh traffic re-mines the class and clears the warm flag. The
	// module must be made resident again (residency is per-process), and
	// a fingerprint-shaped re-check would be satisfied straight from the
	// durable store without loading anything — so ask for a class-scoped
	// check srv1 never ran, which misses the body caches and forces a
	// real load.
	if _, err := cl2.Check(ctx, client.CheckRequest{Source: source, Class: "Valve"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl2.Ingest(ctx, events); err != nil {
		t.Fatal(err)
	}
	if rs := srv2.mineOnce(); rs.Errors != 0 {
		t.Fatalf("post-restart round stats %+v", rs)
	}
	dr, err = cl2.Drift(ctx, classFP)
	if err != nil {
		t.Fatal(err)
	}
	if rep := dr.Reports[0]; rep.Warm || rep.Verdict != mine.VerdictDrift {
		t.Fatalf("re-mined report %+v, want fresh DRIFT", rep)
	}
}

// postIngestRaw POSTs a raw NDJSON frame straight at /v1/ingest,
// bypassing the client's encoder so tests can inject hostile lines.
func postIngestRaw(srv *Server, frame string) (*client.IngestResponse, error) {
	httpResp, err := http.Post("http://"+srv.Addr()+"/v1/ingest", "application/x-ndjson", strings.NewReader(frame))
	if err != nil {
		return nil, err
	}
	defer httpResp.Body.Close()
	raw, err := io.ReadAll(httpResp.Body)
	if err != nil {
		return nil, err
	}
	if httpResp.StatusCode != 200 {
		return nil, fmt.Errorf("ingest: %d %s", httpResp.StatusCode, raw)
	}
	var resp client.IngestResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// TestIngestMalformedLinesSkipped: hostile lines inside a frame are
// counted and skipped without failing the well-formed remainder.
func TestIngestMalformedLinesSkipped(t *testing.T) {
	t.Parallel()
	srv, _ := startServer(t, Config{Workers: 1, Mine: true, MineInterval: time.Hour})
	frame := strings.Join([]string{
		`{"class_fp":"fp/V","device":"d0","events":["a"],"status":"ok"}`,
		`not json at all`,
		`{"class_fp":"","events":["a"]}`,
		`{"class_fp":"fp/V","events":["b"],"status":"ok"}`,
	}, "\n") + "\n"
	resp, err := postIngestRaw(srv, frame)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Received != 2 || resp.Accepted != 2 || resp.Malformed != 2 {
		t.Fatalf("mixed frame response %+v, want 2 accepted / 2 malformed", resp)
	}
}

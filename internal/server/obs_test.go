package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/obs"
)

// syncBuffer makes a bytes.Buffer safe for the handler goroutines that
// write access-log records while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestTraceHeaderEchoedWithTracingOff(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 1})
	resp, err := http.Post("http://"+srv.Addr()+"/v1/check", "application/json",
		strings.NewReader(`{"source":"x = 1"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Shelley-Trace")
	if len(id) != 32 {
		t.Errorf("tracing-off response should still carry a generated 32-char trace ID, got %q", id)
	}
}

func TestTraceHeaderEchoAndValidation(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 1, Tracing: true})
	source := readTestdata(t, "valve.py")
	do := func(sent string) string {
		t.Helper()
		body, _ := json.Marshal(client.CheckRequest{Source: source})
		req, _ := http.NewRequest(http.MethodPost, "http://"+srv.Addr()+"/v1/check", bytes.NewReader(body))
		if sent != "" {
			req.Header.Set("X-Shelley-Trace", sent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get("X-Shelley-Trace")
	}

	if got := do("my-request-42"); got != "my-request-42" {
		t.Errorf("valid client trace ID must be echoed, got %q", got)
	}
	for _, bad := range []string{"bad id with spaces", strings.Repeat("a", 65)} {
		if got := do(bad); got == bad || got == "" {
			t.Errorf("invalid trace ID %q must be replaced, got %q", bad, got)
		} else if !obs.ValidTraceID(got) {
			t.Errorf("replacement trace ID %q is itself invalid", got)
		}
	}
	if got := do(""); len(got) != 32 {
		t.Errorf("absent header must yield a generated 32-char ID, got %q", got)
	}
}

func TestTraceExportEndpoint(t *testing.T) {
	srv, cl := startServer(t, Config{Workers: 1, Tracing: true, TraceRingSize: 128})
	ctx := context.Background()
	if _, err := cl.Check(ctx, client.CheckRequest{Source: readTestdata(t, "valve.py")}); err != nil {
		t.Fatal(err)
	}

	get := func(url string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	status, body := get("http://" + srv.Addr() + "/v1/trace-export")
	if status != http.StatusOK {
		t.Fatalf("trace-export status %d: %s", status, body)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		t.Fatalf("trace-export is not valid chrome JSON: %v", err)
	}
	names := make(map[string]bool)
	for _, e := range chrome.TraceEvents {
		names[e.Name] = true
	}
	for _, want := range []string{"http.check", "load.module", "check.class"} {
		if !names[want] {
			t.Errorf("trace-export missing span %q (have %v)", want, names)
		}
	}

	status, body = get("http://" + srv.Addr() + "/v1/trace-export?format=otlp")
	if status != http.StatusOK || !json.Valid(body) {
		t.Errorf("otlp export: status %d, valid JSON %v", status, json.Valid(body))
	}
	if !bytes.Contains(body, []byte("resourceSpans")) {
		t.Error("otlp export missing resourceSpans")
	}

	if status, _ = get("http://" + srv.Addr() + "/v1/trace-export?format=protobuf"); status != http.StatusBadRequest {
		t.Errorf("unknown format status = %d, want 400", status)
	}
}

func TestTraceExportDisabledWithoutTracing(t *testing.T) {
	srv, _ := startServer(t, Config{Workers: 1})
	resp, err := http.Get("http://" + srv.Addr() + "/v1/trace-export")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("trace-export with tracing off = %d, want 404", resp.StatusCode)
	}
}

func TestAccessLogRecordsRequest(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(obs.NewLogHandler(slog.NewJSONHandler(&buf, nil)))
	srv, cl := startServer(t, Config{Workers: 1, Tracing: true, Logger: logger})

	ctx := context.Background()
	resp, err := cl.Check(ctx, client.CheckRequest{Source: readTestdata(t, "valve.py")})
	if err != nil {
		t.Fatal(err)
	}

	var rec map[string]any
	found := false
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r map[string]any
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("access log line is not JSON: %v\n%s", err, line)
		}
		if r["path"] == "/v1/check" {
			rec, found = r, true
			break
		}
	}
	if !found {
		t.Fatalf("no access record for /v1/check in:\n%s", buf.String())
	}
	if rec["method"] != "POST" || rec["status"] != float64(200) {
		t.Errorf("access record fields wrong: %v", rec)
	}
	if rec["coalesced"] != false {
		t.Errorf("uncoalesced request logged coalesced=%v", rec["coalesced"])
	}
	if rec["trace"] != resp.TraceID {
		t.Errorf("access record trace %v != response trace ID %q", rec["trace"], resp.TraceID)
	}
	if rec["trace_id"] != resp.TraceID {
		t.Errorf("slog handler did not stamp trace_id from the span: %v", rec)
	}
	if _, ok := rec["span_id"].(string); !ok {
		t.Errorf("access record missing span_id: %v", rec)
	}
	_ = srv
}

func TestQuietServerLogsNothing(t *testing.T) {
	_, cl := startServer(t, Config{Workers: 1}) // no Logger = -quiet
	if _, err := cl.Check(context.Background(), client.CheckRequest{Source: readTestdata(t, "valve.py")}); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert on output — the absence of a logger must simply
	// not panic anywhere in the request path.
}

func TestCoalescedRequestsKeepOwnTraceIDs(t *testing.T) {
	// Hold the single worker at a barrier so a second identical request
	// provably coalesces onto the first, then check both responses carry
	// their own trace IDs: headers are per-request even when the body is
	// a shared byte-exact replay.
	release := make(chan struct{})
	var buf syncBuffer
	logger := slog.New(obs.NewLogHandler(slog.NewJSONHandler(&buf, nil)))
	srv, cl := startServer(t, Config{
		Workers: 1, QueueDepth: 8, Tracing: true, Logger: logger,
		jobHook: func() { <-release },
	})

	body, _ := json.Marshal(client.CheckRequest{Source: syntheticSource(2, "Co")})
	post := func(traceID string) string {
		req, _ := http.NewRequest(http.MethodPost, "http://"+srv.Addr()+"/v1/check", bytes.NewReader(body))
		req.Header.Set("X-Shelley-Trace", traceID)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return ""
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get("X-Shelley-Trace")
	}

	var wg sync.WaitGroup
	ids := []string{"leader-trace", "follower-trace"}
	got := make([]string, len(ids))
	for i := range ids {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = post(ids[i])
		}(i)
	}
	// Both requests inside handlers (leader parked at the barrier,
	// follower coalesced onto it), then release the worker.
	waitMetric(t, cl, "shelleyd_inflight_requests", float64(len(ids)))
	close(release)
	wg.Wait()

	for i, want := range ids {
		if got[i] != want {
			t.Errorf("request %d echoed trace %q, want its own %q", i, got[i], want)
		}
	}
	if srv.met.coalesced.Load() == 0 {
		t.Error("coalesced = 0; the held identical requests must have shared one execution")
	}
	if !strings.Contains(buf.String(), `"coalesced":true`) {
		t.Errorf("access log has no coalesced=true record:\n%s", buf.String())
	}
}

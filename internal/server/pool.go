package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// errSaturated is returned by submit when the queue is full;
// errDraining when the daemon has begun shutdown. Both map to 503.
var (
	errSaturated = errors.New("server: queue saturated")
	errDraining  = errors.New("server: draining")
)

// job is one unit of pooled work: run computes the response for a
// coalesced call; deadline is the server-policy execution deadline
// (set at admission, so time spent queued counts against it).
type job struct {
	run      func(ctx context.Context)
	expired  func() // invoked instead of run when the deadline passed in the queue
	deadline time.Time
}

// pool is a fixed-size worker pool with a bounded queue. Saturation is
// load shedding, not backpressure: a full queue rejects immediately
// (the caller answers 503) instead of holding the connection hostage.
type pool struct {
	jobs chan job
	wg   sync.WaitGroup

	// sendMu serializes non-blocking channel sends with close: submit
	// paths hold it shared around their send attempt and close takes it
	// exclusively before closing the channel, so a send racing a
	// drain-budget-expired shutdown observes closed and answers 503
	// instead of panicking. Blocking sends (submitCtx's backpressure
	// wait) cannot hold a lock across the send — they rely on the
	// Server-level guarantee instead: every blocking submitter is
	// registered with Server.addSubmitter and unwound (via drain-expiry
	// context cancellation) before close is called.
	sendMu sync.RWMutex
	closed bool

	// baseCtx is the lifetime of the pool, NOT cancelled by drain —
	// draining means finishing admitted work, so jobs keep their own
	// deadlines and the base context stays live until Close.
	baseCtx context.Context
	cancel  context.CancelFunc

	draining atomic.Bool
	met      *metrics

	// hook runs at the start of every job when non-nil (test seam).
	hook func()
}

// newPool starts workers goroutines servicing a queue of depth queue.
func newPool(workers, queue int, met *metrics, hook func()) *pool {
	ctx, cancel := context.WithCancel(context.Background())
	p := &pool{
		jobs:    make(chan job, queue),
		baseCtx: ctx,
		cancel:  cancel,
		met:     met,
		hook:    hook,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		p.met.queueDepth.Add(-1)
		if p.hook != nil {
			p.hook()
		}
		if !j.deadline.IsZero() && time.Now().After(j.deadline) {
			// The job sat in the queue past its whole budget; answer
			// 504 without burning a worker on work nobody is awaiting.
			p.met.timeoutQueue.Add(1)
			j.expired()
			continue
		}
		ctx := p.baseCtx
		var cancel context.CancelFunc
		if !j.deadline.IsZero() {
			ctx, cancel = context.WithDeadline(ctx, j.deadline)
		}
		p.met.workersBusy.Add(1)
		j.run(ctx)
		p.met.workersBusy.Add(-1)
		if cancel != nil {
			cancel()
		}
	}
}

// trySend is the non-blocking enqueue attempt shared by both submit
// disciplines: sent on success, closed when the pool already shut.
func (p *pool) trySend(j job) (sent, closed bool) {
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	if p.closed {
		return false, true
	}
	select {
	case p.jobs <- j:
		p.met.queueDepth.Add(1)
		return true, false
	default:
		return false, false
	}
}

// submit enqueues a job, rejecting instead of blocking when the queue
// is full or the pool is draining.
func (p *pool) submit(j job) error {
	if p.draining.Load() {
		p.met.saturated.Add(1)
		return errDraining
	}
	sent, closed := p.trySend(j)
	if sent {
		return nil
	}
	p.met.saturated.Add(1)
	if closed {
		return errDraining
	}
	return errSaturated
}

// submitCtx enqueues a job with backpressure: when the queue is full
// it blocks until a worker frees a slot or ctx ends, instead of
// shedding like submit. This is the batch path — a batch was admitted
// as a whole, so its items stall the stream rather than fail, and the
// stall propagates to the client as a paused NDJSON stream (TCP
// backpressure) instead of a retry storm. It deliberately does not
// check draining: batch items are continuations of already-admitted
// work. The blocking send is safe against close because every caller
// is a registered submitter (Server.addSubmitter) whose ctx includes
// the server's drain context: Shutdown cancels that context when its
// budget expires and waits for every submitter to return before
// calling close, so no goroutine can still be parked in this send when
// the channel closes.
func (p *pool) submitCtx(ctx context.Context, j job) error {
	sent, closed := p.trySend(j)
	if sent {
		return nil
	}
	if closed {
		return errDraining
	}
	p.met.batchBackpressure.Add(1)
	select {
	case p.jobs <- j:
		p.met.queueDepth.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// drain stops admissions; already-queued and running jobs finish.
func (p *pool) drain() { p.draining.Store(true) }

// close waits for every admitted job to finish, then stops the
// workers. Call only after drain and after no goroutine can block in
// submitCtx (see its comment); racing non-blocking submits are fenced
// off by sendMu.
func (p *pool) close() {
	p.sendMu.Lock()
	p.closed = true
	p.sendMu.Unlock()
	close(p.jobs)
	p.wg.Wait()
	p.cancel()
}

// Package server implements shelleyd, the resident verification
// daemon: an HTTP/JSON serving layer over the shelley pipeline that
// keeps loaded modules (and their memoizing pipeline caches, PR 1)
// warm across requests, coalesces identical in-flight requests by
// source fingerprint, bounds concurrency with a fixed worker pool and
// queue (503 on saturation, 504 on deadline), and drains gracefully.
//
// Endpoints:
//
//	POST /v1/check        full per-class verification reports
//	POST /v1/infer        per-operation behavior regexes (§3.2)
//	POST /v1/trace        trace membership / flattened replay
//	POST /v1/check-batch  many items, NDJSON streamed as each finishes
//	POST /v1/jobs         async batch; GET /v1/jobs/{id} polls/streams
//	GET  /healthz         liveness (503 while draining)
//	GET  /metrics         Prometheus-style text exposition
//
// Request bodies carry MicroPython source, or a fingerprint of a
// source POSTed earlier for a cache-only re-check. Wire types live in
// the public client package so the daemon and its Go client share one
// schema.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/check"
	"github.com/shelley-go/shelley/internal/mine"
	"github.com/shelley-go/shelley/internal/obs"
	"github.com/shelley-go/shelley/internal/store"
	"github.com/shelley-go/shelley/internal/telemetry"
)

// Config sizes the daemon. The zero value is usable: every field has a
// production-shaped default.
type Config struct {
	// Workers is the number of pool workers executing verification
	// jobs; 0 means GOMAXPROCS.
	Workers int

	// QueueDepth bounds jobs admitted but not yet running; a full
	// queue answers 503. 0 means 4×Workers.
	QueueDepth int

	// RequestTimeout is the per-request execution budget, counted from
	// admission (queue time included); expiry answers 504. 0 means 30s.
	RequestTimeout time.Duration

	// CheckWorkers is the per-request fan-out passed to
	// Module.CheckAllContext. 0 means 1 (parallelism across requests,
	// not within them — the pool is the concurrency budget).
	CheckWorkers int

	// MaxSourceBytes bounds request bodies. 0 means 4 MiB.
	MaxSourceBytes int64

	// MaxModules bounds resident modules; beyond it, settled entries
	// are evicted arbitrarily. 0 means 256.
	MaxModules int

	// Logger receives one structured access record per request (method,
	// path, status, duration, coalesced flag, trace ID). nil disables
	// access logging — the -quiet daemon flag.
	Logger *slog.Logger

	// Tracing turns on the span tracer: every request runs under a root
	// span (trace ID from the X-Shelley-Trace header when the client
	// sends one) and finished spans land in an in-memory ring served by
	// GET /v1/trace-export.
	Tracing bool

	// TraceRingSize caps the span ring; 0 means 4096.
	TraceRingSize int

	// MaxBatchItems bounds the items of one synchronous
	// /v1/check-batch request; larger batches are refused with 413
	// pointing at the async job mode. 0 means 256.
	MaxBatchItems int

	// MaxJobItems bounds the items of one async job (POST /v1/jobs).
	// 0 means 4096.
	MaxJobItems int

	// MaxJobs bounds retained jobs, running and completed; completed
	// jobs are evicted oldest-first to admit new ones. 0 means 64.
	MaxJobs int

	// MaxClientItems bounds one client's in-flight batch items across
	// all its concurrent batch streams and jobs; beyond it the whole
	// batch is refused with 429 and a jittered Retry-After, so one
	// noisy client exhausts its own share instead of the pool. A sync
	// batch charges its full item count; an async job charges its peak
	// pool occupancy — min(items, BatchWindow), further capped to this
	// share — so a job up to MaxJobItems is always admissible on an
	// idle daemon even though MaxJobItems may exceed this bound.
	// Clients are keyed by the X-Shelley-Client token, falling back to
	// the remote host. 0 means 2×MaxBatchItems.
	MaxClientItems int

	// MaxBatchInflight bounds in-flight batch items across every
	// client (503 beyond — the daemon, not the client, is the
	// bottleneck). 0 means 4×MaxBatchItems.
	MaxBatchInflight int

	// BatchWindow bounds how many of one batch's items may occupy the
	// worker pool at once. Batch items submit with backpressure — a
	// full queue stalls the stream instead of shedding — so the window
	// is what keeps one batch from monopolizing the queue. 1 processes
	// items strictly in request order (deterministic record order).
	// 0 means Workers.
	BatchWindow int

	// MaxBatchBytes bounds /v1/check-batch and /v1/jobs request
	// bodies. 0 means 4×MaxSourceBytes.
	MaxBatchBytes int64

	// Store, when non-nil, is the durable artifact store backing warm
	// restarts: verified response bodies and whole-class reports are
	// written behind it, misses read through it, and GET/PUT
	// /v1/snapshot export/import it. The server uses the store but does
	// not own it — the caller (cmd/shelleyd) opens it before New and
	// closes it after Shutdown. nil disables persistence entirely.
	Store *store.Store

	// MaxSnapshotBytes bounds PUT /v1/snapshot bodies. 0 means 256 MiB.
	MaxSnapshotBytes int64

	// Limits is the per-request resource budget attached to every
	// pooled job's context: it bounds automata states, regex sizes, and
	// counterexample-search nodes so a pathological request returns a
	// structured budget error instead of pinning a worker and growing
	// memory without bound. The zero value means budget.Default();
	// explicitly unlimited daemons are not supported — set huge limits
	// instead.
	Limits budget.Limits

	// Mine enables the trace-ingestion and model-mining subsystem:
	// POST /v1/ingest accepts fleet trace observations, a background
	// loop mines per-class automata from them and diffs the result
	// against the statically inferred models, and GET /v1/drift serves
	// the verdicts. Off by default — the endpoints answer 404.
	Mine bool

	// MineInterval is the background mining-loop period. Ingest is
	// decoupled from learning: observations buffer in bounded corpora
	// and each tick re-mines only classes whose observed language grew.
	// 0 means 5s.
	MineInterval time.Duration

	// MineConfig tunes the miner (corpus bounds, class cap, learning
	// budget). Its Store field is overridden with Config.Store so mined
	// models and drift verdicts share the daemon's artifact store.
	MineConfig mine.Config

	// MaxIngestBytes bounds one /v1/ingest NDJSON frame. 0 means 8 MiB.
	MaxIngestBytes int64

	// MaxClientEvents bounds one client's in-flight ingested events
	// (each observation charges at least 1); beyond it the whole frame
	// is refused with 429 and a jittered Retry-After. Ingest therefore
	// sheds under overload — admission refusal at the HTTP layer, corpus
	// bounds underneath — and never blocks a reporting device. 0 means
	// 65536.
	MaxClientEvents int

	// MaxIngestInflight bounds in-flight ingested events across every
	// client (503 beyond). 0 means 4×MaxClientEvents.
	MaxIngestInflight int

	// Watch enables incremental re-verification sessions for edit
	// loops: POST /v1/watch pushes a source generation into a named
	// session (diffed at method granularity against the previous push,
	// only invalidated classes re-verified), GET /v1/watch long-polls
	// the session's next round. Off by default — the endpoints answer
	// 404.
	Watch bool

	// MaxWatchSessions bounds resident watch sessions; past it the
	// least-recently-used session is evicted (its pollers wake with
	// 404). 0 means 64.
	MaxWatchSessions int

	// WatchPollTimeout bounds one GET /v1/watch long-poll; a lapsed
	// poll answers 204 and the client re-polls. 0 means 25s.
	WatchPollTimeout time.Duration

	// Telemetry enables the in-process time-series engine: the metric
	// registry is snapshotted every TelemetryInterval into rolling
	// rings, SLOs are evaluated with burn-rate alerts, interesting
	// requests are tail-sampled into an exemplar ring with their span
	// trees, and GET /v1/status serves the result (JSON, or a
	// self-contained dashboard with ?format=html). Off by default —
	// /v1/status answers 404.
	Telemetry bool

	// TelemetryInterval is the engine's base snapshot period (the fine
	// ring's resolution). 0 means 1s.
	TelemetryInterval time.Duration

	// SLOs are the objectives the engine evaluates. Empty means two
	// defaults: check availability 99.9% and check latency p99 < 1ms
	// per telemetry.DefaultSLOs.
	SLOs []telemetry.SLO

	// ExemplarLatency is the fallback tail-sampling threshold for
	// endpoints without a latency SLO: a slower request is kept as an
	// exemplar. Endpoints with a latency SLO use its threshold.
	// 0 means 100ms.
	ExemplarLatency time.Duration

	// Exemplars bounds the exemplar ring. 0 means 64.
	Exemplars int

	// jobHook, when set, runs at the start of every pooled job — a
	// test-only seam that lets the suite hold workers at a barrier and
	// observe saturation, coalescing, and drain deterministically.
	jobHook func()

	// runHook, when set, runs inside the panic-contained execution
	// region of every pooled job, before the verification work — a
	// test-only seam for injecting panics to exercise containment.
	runHook func()
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.CheckWorkers <= 0 {
		c.CheckWorkers = 1
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 4 << 20
	}
	if c.MaxModules <= 0 {
		c.MaxModules = 256
	}
	if c.MaxBatchItems <= 0 {
		c.MaxBatchItems = 256
	}
	if c.MaxJobItems <= 0 {
		c.MaxJobItems = 4096
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.MaxClientItems <= 0 {
		c.MaxClientItems = 2 * c.MaxBatchItems
	}
	if c.MaxBatchInflight <= 0 {
		c.MaxBatchInflight = 4 * c.MaxBatchItems
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = c.Workers
	}
	if c.MaxBatchBytes <= 0 {
		c.MaxBatchBytes = 4 * c.MaxSourceBytes
	}
	if c.MaxSnapshotBytes <= 0 {
		c.MaxSnapshotBytes = 256 << 20
	}
	if c.Limits.Unlimited() {
		c.Limits = budget.Default()
	}
	if c.MineInterval <= 0 {
		c.MineInterval = 5 * time.Second
	}
	if c.MaxIngestBytes <= 0 {
		c.MaxIngestBytes = 8 << 20
	}
	if c.MaxClientEvents <= 0 {
		c.MaxClientEvents = 65536
	}
	if c.MaxIngestInflight <= 0 {
		c.MaxIngestInflight = 4 * c.MaxClientEvents
	}
	if c.MaxWatchSessions <= 0 {
		c.MaxWatchSessions = 64
	}
	if c.WatchPollTimeout <= 0 {
		c.WatchPollTimeout = 25 * time.Second
	}
	if c.TelemetryInterval <= 0 {
		c.TelemetryInterval = time.Second
	}
	if len(c.SLOs) == 0 {
		c.SLOs = telemetry.DefaultSLOs()
	}
	if c.ExemplarLatency <= 0 {
		c.ExemplarLatency = 100 * time.Millisecond
	}
	return c
}

// Server is a shelleyd instance. Create with New, expose via Handler
// (any http.Server or test mux) or Start (own listener), stop with
// Shutdown.
type Server struct {
	cfg      Config
	modules  *moduleCache
	co       *coalescer
	pool     *pool
	met      *metrics
	mux      *http.ServeMux
	adm      *admission
	jobs     *jobStore
	store    *store.Store // nil when persistence is off
	draining atomic.Bool

	// submitters tracks every goroutine that may submit pooled work
	// with blocking backpressure — sync batch handlers and async job
	// runners. drainCtx is their shared base context, canceled (with
	// errDraining as its cause) only when a Shutdown budget expires, so
	// admitted batches normally run to completion through a drain but a
	// submitter blocked in a queue send always unwinds before the pool
	// closes. submitMu makes the draining flip and submitter
	// registration mutually exclusive, so Shutdown's wait cannot miss a
	// registrant that raced the flip.
	submitMu    sync.Mutex
	submitters  sync.WaitGroup
	drainCtx    context.Context
	drainCancel context.CancelCauseFunc

	// miner and ingestAdm are non-nil iff Config.Mine. The mining loop
	// runs from New until Shutdown; mineCtx cancels it (and any round in
	// progress), mineDone confirms it exited, mineStopOnce makes the
	// stop idempotent.
	miner        *mine.Miner
	ingestAdm    *admission
	mineCtx      context.Context
	mineCancel   context.CancelFunc
	mineDone     chan struct{}
	mineStopOnce sync.Once

	// watch is non-nil iff Config.Watch. watchStop is closed at the
	// start of Shutdown so parked long-pollers answer 503 immediately
	// instead of stalling the HTTP drain for a poll window;
	// watchKeySeq uniquifies push launch keys (watch rounds are
	// stateful and must never coalesce).
	watch         *watchStore
	watchStop     chan struct{}
	watchStopOnce sync.Once
	watchKeySeq   atomic.Uint64

	// tracer is non-nil when Config.Tracing or Config.Telemetry (the
	// exemplar span trees need spans); ring only with Tracing; logger
	// is Config.Logger verbatim (nil = quiet).
	tracer *obs.Tracer
	ring   *obs.Ring
	logger *slog.Logger

	// engine and traceBuf are non-nil iff Config.Telemetry. The
	// telemetry loop ticks the engine from New until Shutdown;
	// latThresh holds the per-endpoint exemplar thresholds derived
	// from the latency SLOs.
	engine       *telemetry.Engine
	traceBuf     *obs.TraceBuffer
	latThresh    map[string]time.Duration
	teleCtx      context.Context
	teleCancel   context.CancelFunc
	teleDone     chan struct{}
	teleStopOnce sync.Once

	httpSrv  *http.Server
	listener net.Listener

	// closeOnce/poolClosed make Shutdown idempotent: the pool closes
	// exactly once, later calls just wait on poolClosed.
	closeOnce  sync.Once
	poolClosed chan struct{}
}

// New returns a ready (but not yet listening) daemon.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	met := newMetrics()
	s := &Server{
		cfg:        cfg,
		modules:    newModuleCache(cfg.MaxModules, met, cfg.Store),
		co:         newCoalescer(),
		pool:       newPool(cfg.Workers, cfg.QueueDepth, met, cfg.jobHook),
		met:        met,
		mux:        http.NewServeMux(),
		adm:        newAdmission(cfg.MaxClientItems, cfg.MaxBatchInflight, &met.batchRejected, &met.batchInflightItems),
		jobs:       newJobStore(cfg.MaxJobs),
		store:      cfg.Store,
		poolClosed: make(chan struct{}),
		logger:     cfg.Logger,
		watchStop:  make(chan struct{}),
	}
	if cfg.Watch {
		s.watch = newWatchStore(cfg.MaxWatchSessions, &met.watchEvicted, &met.watchSessions)
	}
	s.drainCtx, s.drainCancel = context.WithCancelCause(context.Background())
	var tracerOpts []obs.Option
	if cfg.Tracing {
		size := cfg.TraceRingSize
		if size <= 0 {
			size = 4096
		}
		s.ring = obs.NewRing(size)
		tracerOpts = append(tracerOpts, obs.WithExporter(s.ring))
	}
	if cfg.Telemetry {
		// Retain every request's span tree briefly so tail sampling
		// can claim the interesting ones after the fact.
		s.traceBuf = obs.NewTraceBuffer(0, 0)
		tracerOpts = append(tracerOpts, obs.WithExporter(s.traceBuf))
		s.engine = telemetry.New(telemetry.Config{
			Tiers:     telemetryTiers(cfg.TelemetryInterval),
			SLOs:      cfg.SLOs,
			Exemplars: cfg.Exemplars,
			Source:    func() telemetry.Sample { return s.met.sample(s.modules.stats(), s.store, s.mineSnap()) },
		})
		s.latThresh = make(map[string]time.Duration)
		for _, slo := range cfg.SLOs {
			if slo.Latency > 0 {
				if cur, ok := s.latThresh[slo.Endpoint]; !ok || slo.Latency < cur {
					s.latThresh[slo.Endpoint] = slo.Latency
				}
			}
		}
	}
	if len(tracerOpts) > 0 {
		s.tracer = obs.New(tracerOpts...)
	}
	s.mux.HandleFunc("POST /v1/check", s.instrument("check", s.handleCheck))
	s.mux.HandleFunc("POST /v1/infer", s.instrument("infer", s.handleInfer))
	s.mux.HandleFunc("POST /v1/trace", s.instrument("trace", s.handleTrace))
	s.mux.HandleFunc("POST /v1/check-batch", s.instrument("check-batch", s.handleCheckBatch))
	s.mux.HandleFunc("POST /v1/jobs", s.instrument("jobs", s.handleJobSubmit))
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job-get", s.handleJobGet))
	s.mux.HandleFunc("GET /v1/snapshot", s.instrument("snapshot-get", s.handleSnapshotGet))
	s.mux.HandleFunc("PUT /v1/snapshot", s.instrument("snapshot-put", s.handleSnapshotPut))
	s.mux.HandleFunc("POST /v1/watch", s.instrument("watch", s.handleWatchPost))
	s.mux.HandleFunc("GET /v1/watch", s.instrument("watch-poll", s.handleWatchGet))
	s.mux.HandleFunc("POST /v1/ingest", s.instrument("ingest", s.handleIngest))
	s.mux.HandleFunc("GET /v1/drift", s.instrument("drift", s.handleDrift))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /v1/trace-export", s.handleTraceExport)
	if cfg.Mine {
		mc := cfg.MineConfig
		mc.Store = cfg.Store
		if s.engine != nil {
			mc.OnVerdict = s.onMineVerdict
		}
		s.miner = mine.NewMiner(mc)
		s.ingestAdm = newAdmission(cfg.MaxClientEvents, cfg.MaxIngestInflight, &met.ingestRejected, &met.ingestInflightEvents)
		s.mineCtx, s.mineCancel = context.WithCancel(context.Background())
		s.mineDone = make(chan struct{})
		go s.mineLoop()
	}
	if s.engine != nil {
		s.teleCtx, s.teleCancel = context.WithCancel(context.Background())
		s.teleDone = make(chan struct{})
		go s.teleLoop()
	}
	return s
}

// TraceSnapshot returns the buffered spans of the daemon's trace ring,
// oldest first; nil when tracing is off. cmd/shelleyd drains this into
// the -trace file at shutdown.
func (s *Server) TraceSnapshot() []obs.SpanData {
	if s.ring == nil {
		return nil
	}
	return s.ring.Snapshot()
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (e.g. "127.0.0.1:9944"; port 0 picks a free
// port) and serves until Shutdown. It returns once the listener is
// accepting, with the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve errors after Shutdown are expected; others surface
			// through failing requests, which the clients observe.
			_ = err
		}
	}()
	return ln.Addr().String(), nil
}

// Addr returns the bound address after Start.
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// Shutdown drains the daemon: new work is refused (healthz flips
// unhealthy, submissions answer 503), every admitted request runs to
// completion and its response is delivered, then workers and listener
// stop. ctx bounds the wait; on expiry remaining work is abandoned.
// This is what SIGTERM triggers in cmd/shelleyd.
func (s *Server) Shutdown(ctx context.Context) error {
	// The draining flip happens under submitMu so that, once it is
	// visible, addSubmitter can never admit another submitter — which
	// is what makes the submitters.Wait below a complete census.
	s.submitMu.Lock()
	s.draining.Store(true)
	s.submitMu.Unlock()
	// The mining loop stops first: canceling mineCtx aborts any round in
	// progress, so its final store Puts are enqueued before the flush at
	// the end of the drain — a clean shutdown loses no mined verdict.
	s.stopMiner()
	s.stopTelemetry()
	// Wake every parked watch long-poller with a 503 now: they hold no
	// admitted work, and httpSrv.Shutdown below waits for in-flight
	// handlers — without this, each poller would stall the drain for up
	// to a full WatchPollTimeout.
	s.watchStopOnce.Do(func() { close(s.watchStop) })
	s.pool.drain()
	var err error
	if s.httpSrv != nil {
		// Waits for in-flight handlers — which wait for their pooled
		// jobs — so no accepted request is dropped mid-drain.
		err = s.httpSrv.Shutdown(ctx)
	}
	// Batch streams and async jobs are admitted work too: wait for
	// every registered submitter (sync batch handlers and job runner
	// goroutines), canceling their drain context only when the budget
	// expires. Cancellation unwinds submitters blocked in a queue send
	// promptly — recording the remaining items as canceled — which is
	// what makes the pool close below safe: http.Server.Shutdown never
	// cancels request contexts, so without this a batch handler could
	// still be parked in a channel send when the queue closes.
	submittersDone := make(chan struct{})
	go func() { s.submitters.Wait(); close(submittersDone) }()
	select {
	case <-submittersDone:
	case <-ctx.Done():
		s.drainCancel(errDraining)
		<-submittersDone
	}
	// All handlers and job runners have returned (or were canceled):
	// no submitter is left, so the queue can close and workers join.
	s.closeOnce.Do(func() {
		go func() { s.pool.close(); close(s.poolClosed) }()
	})
	select {
	case <-s.poolClosed:
	case <-ctx.Done():
		return ctx.Err()
	}
	// The store's write-behind queue is admitted work too: with every
	// worker stopped no new Puts can arrive, so flushing here (bounded
	// by the same drain budget) guarantees a clean shutdown loses no
	// completed artifact. The caller owns the store and closes it.
	if s.store != nil {
		if ferr := s.store.Flush(ctx); ferr != nil && err == nil {
			err = ferr
		}
	}
	return err
}

// addSubmitter registers a goroutine that may submit pooled work with
// blocking backpressure (a sync batch handler or an async job runner),
// refusing once draining has begun. Registration and the draining flip
// share submitMu: a submitter is either counted before Shutdown waits,
// or sees draining and backs off — never neither, which is the
// invariant pool.close relies on. Every true return must be paired
// with exactly one s.submitters.Done().
func (s *Server) addSubmitter() bool {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.submitters.Add(1)
	return true
}

// reqInfo rides the request context so execute can report back to
// instrument whether this request was coalesced onto another's work.
type reqInfoKey struct{}

type reqInfo struct{ coalesced atomic.Bool }

// instrument wraps a handler with inflight/latency/status accounting,
// a per-request root span (trace ID taken from the X-Shelley-Trace
// header when valid, generated otherwise, and always echoed back in
// the response header), and one structured access-log record.
func (s *Server) instrument(endpoint string, h func(w http.ResponseWriter, r *http.Request) int) http.HandlerFunc {
	spanName := "http." + endpoint // hoisted off the per-request path
	ep := s.met.endpoint(endpoint) // pre-registered: observe is lock-free
	return func(w http.ResponseWriter, r *http.Request) {
		traceID := r.Header.Get("X-Shelley-Trace")
		if !obs.ValidTraceID(traceID) {
			traceID = obs.NewTraceID()
		}
		// The header goes out even with tracing off: request/response
		// correlation must not depend on the span ring being enabled.
		w.Header().Set("X-Shelley-Trace", traceID)
		info := &reqInfo{}
		ctx := context.WithValue(r.Context(), reqInfoKey{}, info)
		var span *obs.Span
		if s.tracer != nil {
			ctx, span = s.tracer.StartRoot(ctx, spanName, traceID,
				obs.String("method", r.Method), obs.String("path", r.URL.Path))
		}
		r = r.WithContext(ctx)

		s.met.inflight.Add(1)
		start := time.Now()
		code := h(w, r)
		s.met.inflight.Add(-1)
		elapsed := time.Since(start)
		ep.observe(code, elapsed)

		span.SetAttr(obs.Int("status", code), obs.Bool("coalesced", info.coalesced.Load()))
		span.End()
		// Tail sampling runs after span.End so the exemplar can claim
		// the finished root span from the trace buffer.
		s.maybeExemplar(endpoint, traceID, code, elapsed)
		if s.logger != nil {
			s.logger.LogAttrs(ctx, slog.LevelInfo, "access",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", code),
				slog.Duration("duration", elapsed),
				slog.Bool("coalesced", info.coalesced.Load()),
				slog.String("trace", traceID))
		}
	}
}

// writeError emits the uniform error body. A failed write is counted
// rather than surfaced: once WriteHeader has run the status is
// committed, so a mid-body disconnect can only truncate the response —
// the shelleyd_response_write_errors_total counter is the audit trail
// that it happened.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(client.ErrorResponse{Error: msg}); err != nil {
		s.met.writeErrors.Add(1)
	}
	return status
}

// writeRaw replays a coalesced call's byte-exact response. Write
// failures are counted like writeError's.
func (s *Server) writeRaw(w http.ResponseWriter, status int, body []byte) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.met.writeErrors.Add(1)
	}
	return status
}

// resolveModule turns a request's (source, fingerprint) pair into a
// resident module, computing the fingerprint server-side when only
// source is given. Error mapping: empty request 400, unknown
// fingerprint 404, unloadable source 422.
func (s *Server) resolveModule(w http.ResponseWriter, r *http.Request, source, fp string) (*shelley.Module, string, int) {
	if source == "" && fp == "" {
		return nil, "", s.writeError(w, http.StatusBadRequest, "request needs source or fingerprint")
	}
	if source != "" {
		computed := client.Fingerprint(source)
		if fp != "" && fp != computed {
			return nil, "", s.writeError(w, http.StatusBadRequest, "fingerprint does not match source")
		}
		fp = computed
	}
	mod, err := s.modules.get(r.Context(), fp, source)
	switch {
	case errors.Is(err, errNotResident):
		return nil, "", s.writeError(w, http.StatusNotFound, "module "+fp+" not resident; re-POST its source")
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.met.timeoutWait.Add(1)
		return nil, "", s.writeError(w, http.StatusGatewayTimeout, "module load wait: "+err.Error())
	case err != nil:
		return nil, "", s.writeError(w, http.StatusUnprocessableEntity, err.Error())
	}
	return mod, fp, 0
}

// launch routes fn through coalescing and the worker pool, returning
// the call whose done channel publishes the shared byte-exact
// response. key must canonically encode the endpoint and every request
// parameter that affects the response — single-shot and batch requests
// use the same keys, so a batch item coalesces with an identical
// in-flight /v1/check and vice versa. block selects the submission
// discipline: single-shot requests shed load (a full queue resolves
// 503 immediately), batch items exert backpressure (the submission
// blocks until a worker frees a slot or rctx ends).
func (s *Server) launch(rctx context.Context, key string, block bool, fn func(ctx context.Context) (int, []byte)) (c *call, coalesced bool) {
	c, leader := s.co.get(key)
	if !leader {
		s.met.coalesced.Add(1)
		return c, true
	}
	// Pooled jobs run under the pool's deadline context, not the
	// request's; the carrier re-attaches the leader's tracer and
	// root span so the work still nests under the request trace.
	carrier := obs.Carry(rctx)
	j := job{
		deadline: time.Now().Add(s.cfg.RequestTimeout),
		run: func(ctx context.Context) {
			// A panic anywhere in the verification pipeline must not
			// kill the daemon or strand the coalesced waiters: it is
			// contained here, counted, and answered as a 500. The
			// coalescer entry is forgotten first so a retry of the
			// same key computes fresh instead of waiting forever.
			defer func() {
				if rec := recover(); rec != nil {
					s.met.panics.Add(1)
					s.co.forget(key)
					body, _ := json.Marshal(client.ErrorResponse{
						Error: fmt.Sprintf("internal error: verification panicked: %v", rec),
					})
					c.resolve(http.StatusInternalServerError, body)
				}
			}()
			if s.cfg.runHook != nil {
				s.cfg.runHook()
			}
			// Every pooled job runs under the configured resource
			// budget; pipeline constructions read it from the context.
			status, body := fn(budget.With(carrier.Context(ctx), s.cfg.Limits))
			s.co.forget(key)
			c.resolve(status, body)
		},
		expired: func() {
			s.co.forget(key)
			body, _ := json.Marshal(client.ErrorResponse{Error: "request expired in queue"})
			c.resolve(http.StatusGatewayTimeout, body)
		},
	}
	var err error
	if block {
		err = s.pool.submitCtx(rctx, j)
	} else {
		err = s.pool.submit(j)
	}
	if err != nil {
		s.co.forget(key)
		msg := "queue saturated; retry later"
		switch {
		case errors.Is(err, errDraining):
			msg = "daemon is draining"
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			msg = "request ended before submission: " + err.Error()
		}
		body, _ := json.Marshal(client.ErrorResponse{Error: msg})
		c.resolve(http.StatusServiceUnavailable, body)
	}
	return c, false
}

// execute is the single-shot request path over launch: wait for the
// shared response and replay it to this waiter.
func (s *Server) execute(w http.ResponseWriter, r *http.Request, key string, fn func(ctx context.Context) (int, []byte)) int {
	c, coalesced := s.launch(r.Context(), key, false, fn)
	if coalesced {
		if info, ok := r.Context().Value(reqInfoKey{}).(*reqInfo); ok {
			info.coalesced.Store(true)
		}
	}
	select {
	case <-c.done:
		return s.writeRaw(w, c.status, c.body)
	case <-r.Context().Done():
		// This waiter's client went away (or its own deadline passed);
		// the shared computation continues for the others.
		s.met.timeoutWait.Add(1)
		return s.writeError(w, http.StatusGatewayTimeout, "request context ended: "+r.Context().Err().Error())
	}
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) int {
	var req client.CheckRequest
	if err := decodeBody(w, r, s.cfg.MaxSourceBytes, &req); err != nil {
		return s.writeError(w, http.StatusBadRequest, err.Error())
	}
	// The fingerprint is computable without loading anything, and both
	// body fast paths key on it — so they run before module resolution,
	// which is what lets a freshly restarted daemon answer a
	// fingerprint-only check from the durable store without the module
	// being resident (or its source being re-POSTed) at all.
	if req.Source == "" && req.Fingerprint == "" {
		return s.writeError(w, http.StatusBadRequest, "request needs source or fingerprint")
	}
	fp := req.Fingerprint
	if req.Source != "" {
		computed := client.Fingerprint(req.Source)
		if fp != "" && fp != computed {
			return s.writeError(w, http.StatusBadRequest, "fingerprint does not match source")
		}
		fp = computed
	}
	key := checkKey(fp, req.Class, req.Precise)
	if body, ok := s.modules.cachedBody(fp, key); ok {
		// A memoized success is byte-identical to the pooled path's
		// response (it IS that path's bytes) and needs no scheduling,
		// budget, or coalescing — answer in the handler goroutine.
		// Serving before the class-existence check is sound: bodies are
		// stored only for requests that answered 200, which proves the
		// class existed in this exact (content-addressed) source.
		s.met.bodyCacheHits.Add(1)
		return s.writeRaw(w, http.StatusOK, body)
	}
	if body, ok := s.storeBody(key); ok {
		// Same contract one layer down: a persisted 200 body for this
		// content-addressed key is the prior process's exact bytes.
		// Re-memoize it in memory (when the module is resident) so the
		// next repeat skips the disk too.
		s.met.storeBodyHits.Add(1)
		s.modules.storeBody(fp, key, body)
		return s.writeRaw(w, http.StatusOK, body)
	}
	mod, fp, errCode := s.resolveModule(w, r, req.Source, req.Fingerprint)
	if mod == nil {
		return errCode
	}
	if req.Class != "" {
		if _, ok := mod.Class(req.Class); !ok {
			return s.writeError(w, http.StatusNotFound, "class "+req.Class+" not found")
		}
	}
	return s.execute(w, r, key, s.checkFn(mod, fp, req.Class, req.Precise))
}

// storeBodyKey namespaces persisted response bodies apart from the
// persisted pipeline artifacts sharing the durable store.
func storeBodyKey(key string) string { return "body\x00" + key }

// storeBody consults the durable store for a persisted 200 response
// body. Always a miss without a store.
func (s *Server) storeBody(key string) ([]byte, bool) {
	if s.store == nil {
		return nil, false
	}
	return s.store.Get(storeBodyKey(key))
}

// checkKey is the canonical coalescing key of a check: shared by
// /v1/check and every batch item, so identical work in flight anywhere
// collapses to one execution.
func checkKey(fp, class string, precise bool) string {
	return strings.Join([]string{"check", fp, class, fmt.Sprint(precise)}, "\x00")
}

// checkFn builds the pooled verification closure for one (module,
// class, precise) triple; its byte output is what /v1/check responds
// and what a batch record embeds.
func (s *Server) checkFn(mod *shelley.Module, fp, class string, precise bool) func(ctx context.Context) (int, []byte) {
	return func(ctx context.Context) (int, []byte) {
		var reports []*shelley.Report
		var err error
		if class != "" {
			cls, _ := mod.Class(class)
			var opts []check.Option
			if precise {
				opts = append(opts, check.Precise())
			}
			var rep *shelley.Report
			rep, err = cls.CheckContext(ctx, opts...)
			if rep != nil {
				reports = []*shelley.Report{rep}
			}
		} else if precise {
			reports, err = checkAllPrecise(ctx, mod)
		} else {
			reports, err = mod.CheckAllContext(ctx, s.cfg.CheckWorkers)
		}
		if err != nil {
			return s.checkErrorBody(ctx, err)
		}
		ok := true
		for _, rep := range reports {
			ok = ok && rep.OK()
		}
		status, body := jsonBody(client.CheckResponse{Fingerprint: fp, OK: ok, Reports: reports})
		if status == http.StatusOK {
			// Memoize the settled success so warm repeats skip the pool
			// entirely (see moduleEntry.bodies), and write it behind the
			// durable store so the next process boots warm. Errors never
			// stick in either layer.
			key := checkKey(fp, class, precise)
			s.modules.storeBody(fp, key, body)
			if s.store != nil {
				s.store.Put(storeBodyKey(key), body)
			}
		}
		return status, body
	}
}

// checkErrorBody maps a verification error to its response: budget
// exhaustion is the client's problem (422, counted), a fired deadline
// is a timeout (504), anything else is unprocessable input (422).
func (s *Server) checkErrorBody(ctx context.Context, err error) (int, []byte) {
	if errors.Is(err, budget.ErrExceeded) {
		s.met.budgetExceeded.Add(1)
		return errorBody(http.StatusUnprocessableEntity, "resource budget exceeded: "+err.Error())
	}
	if ctx.Err() != nil || errors.Is(err, budget.ErrCanceled) {
		return errorBody(http.StatusGatewayTimeout, "check timed out: "+err.Error())
	}
	return errorBody(http.StatusUnprocessableEntity, err.Error())
}

// checkAllPrecise is the precise-mode module sweep: per-class Check
// with the Precise option, honoring ctx between classes.
func checkAllPrecise(ctx context.Context, mod *shelley.Module) ([]*shelley.Report, error) {
	classes := mod.Classes()
	out := make([]*shelley.Report, 0, len(classes))
	for _, c := range classes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := c.CheckContext(ctx, shelley.Precise())
		if err != nil {
			return nil, fmt.Errorf("checking %s: %w", c.Name(), err)
		}
		out = append(out, rep)
	}
	return out, nil
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) int {
	var req client.InferRequest
	if err := decodeBody(w, r, s.cfg.MaxSourceBytes, &req); err != nil {
		return s.writeError(w, http.StatusBadRequest, err.Error())
	}
	if req.Class == "" {
		return s.writeError(w, http.StatusBadRequest, "infer needs a class")
	}
	mod, fp, errCode := s.resolveModule(w, r, req.Source, req.Fingerprint)
	if mod == nil {
		return errCode
	}
	cls, ok := mod.Class(req.Class)
	if !ok {
		return s.writeError(w, http.StatusNotFound, "class "+req.Class+" not found")
	}
	key := strings.Join([]string{"infer", fp, req.Class, req.Operation}, "\x00")
	return s.execute(w, r, key, func(ctx context.Context) (int, []byte) {
		ops := cls.Operations()
		if req.Operation != "" {
			ops = []string{req.Operation}
		}
		resp := client.InferResponse{Fingerprint: fp, Class: req.Class}
		for _, op := range ops {
			if err := ctx.Err(); err != nil {
				return errorBody(http.StatusGatewayTimeout, "infer timed out: "+err.Error())
			}
			raw, err := cls.Behavior(op)
			if err != nil {
				return errorBody(http.StatusNotFound, err.Error())
			}
			simp, err := cls.BehaviorSimplified(op)
			if err != nil {
				return errorBody(http.StatusNotFound, err.Error())
			}
			resp.Behaviors = append(resp.Behaviors, client.OperationBehavior{
				Operation: op, Behavior: raw, Simplified: simp,
			})
		}
		return jsonBody(resp)
	})
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) int {
	var req client.TraceRequest
	if err := decodeBody(w, r, s.cfg.MaxSourceBytes, &req); err != nil {
		return s.writeError(w, http.StatusBadRequest, err.Error())
	}
	if req.Class == "" {
		return s.writeError(w, http.StatusBadRequest, "trace needs a class")
	}
	mod, fp, errCode := s.resolveModule(w, r, req.Source, req.Fingerprint)
	if mod == nil {
		return errCode
	}
	cls, ok := mod.Class(req.Class)
	if !ok {
		return s.writeError(w, http.StatusNotFound, "class "+req.Class+" not found")
	}
	key := strings.Join([]string{"trace", fp, req.Class, fmt.Sprint(req.Replay), strings.Join(req.Trace, "\x01")}, "\x00")
	return s.execute(w, r, key, func(ctx context.Context) (int, []byte) {
		resp := client.TraceResponse{
			Fingerprint: fp,
			Class:       req.Class,
			Trace:       req.Trace,
			Accepted:    cls.RunTrace(req.Trace),
		}
		if req.Replay {
			if err := cls.ReplayFlat(req.Trace); err != nil {
				resp.ReplayError = err.Error()
			}
		}
		return jsonBody(resp)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.store != nil && s.store.Degraded() {
		// Still 200: every store failure degrades to recompute-and-serve,
		// so the daemon is healthy — but the disk needs an operator.
		io.WriteString(w, "ok (store degraded)\n")
		return
	}
	io.WriteString(w, "ok\n")
}

// handleSnapshotGet streams the store's verified entries as one
// snapshot — the export half of pre-warming a fresh instance.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) int {
	if s.store == nil {
		return s.writeError(w, http.StatusNotFound, "no artifact store configured; start shelleyd with -store-dir")
	}
	// Catch the write-behind queue up first (bounded by the request's
	// deadline) so the snapshot includes this process's freshest work; a
	// flush failure only means those entries are absent, not an error.
	_ = s.store.Flush(r.Context())
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if err := s.store.WriteSnapshot(w); err != nil {
		// The status line is committed; a mid-stream failure can only
		// truncate, which the importer's framing detects and rejects.
		s.met.writeErrors.Add(1)
	}
	return http.StatusOK
}

// handleSnapshotPut imports a snapshot stream into the store. Damaged
// records are skipped and counted server-side; a structurally broken
// stream answers 400 (entries imported before the break are kept —
// they verified individually).
func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) int {
	if s.store == nil {
		return s.writeError(w, http.StatusNotFound, "no artifact store configured; start shelleyd with -store-dir")
	}
	imported, skipped, err := s.store.ReadSnapshot(http.MaxBytesReader(w, r.Body, s.cfg.MaxSnapshotBytes))
	if err != nil {
		return s.writeError(w, http.StatusBadRequest, fmt.Sprintf(
			"snapshot import aborted after %d imported, %d skipped: %v", imported, skipped, err))
	}
	status, body := jsonBody(client.SnapshotImportResponse{Imported: imported, Skipped: skipped})
	return s.writeRaw(w, status, body)
}

// handleTraceExport serves the in-memory span ring as Chrome
// trace-event JSON (default) or OTLP JSON (?format=otlp) — the debug
// window into a live daemon's recent work.
func (s *Server) handleTraceExport(w http.ResponseWriter, r *http.Request) {
	if s.ring == nil {
		s.writeError(w, http.StatusNotFound, "tracing disabled; start shelleyd with -trace or -trace-ring")
		return
	}
	spans := s.ring.Snapshot()
	var err error
	switch format := r.URL.Query().Get("format"); format {
	case "", "chrome":
		w.Header().Set("Content-Type", "application/json")
		err = obs.WriteChromeTrace(w, spans)
	case "otlp":
		w.Header().Set("Content-Type", "application/json")
		err = obs.WriteOTLP(w, spans)
	default:
		s.writeError(w, http.StatusBadRequest, "unknown trace format "+format+" (want chrome or otlp)")
		return
	}
	if err != nil && s.logger != nil {
		s.logger.LogAttrs(r.Context(), slog.LevelWarn, "trace-export write failed",
			slog.String("error", err.Error()))
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.met.render(&b, s.modules.stats(), s.store, s.mineSnap())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// decodeBody reads a JSON request bounded by maxBytes.
func decodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// jsonBody marshals a pooled-work response.
func jsonBody(v any) (int, []byte) {
	body, err := json.Marshal(v)
	if err != nil {
		return errorBody(http.StatusInternalServerError, "encoding response: "+err.Error())
	}
	return http.StatusOK, body
}

// errorBody marshals a pooled-work error response.
func errorBody(status int, msg string) (int, []byte) {
	body, _ := json.Marshal(client.ErrorResponse{Error: msg})
	return status, body
}

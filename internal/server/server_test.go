package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/client"
)

// startServer boots a daemon on a free port and returns a client for
// it, tearing both down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	srv := New(cfg)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := client.New("http://" + addr)
	if err := cl.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, cl
}

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// syntheticSource builds a module with one base class and n distinct
// composite classes; tag makes whole sources distinct from each other.
// Cold-checking it costs real pipeline work per class, which is what
// the saturation, drain, and coalescing tests lean on.
func syntheticSource(n int, tag string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `@sys
class Dev%s:
    @op_initial
    def acquire(self):
        return ["release"]

    @op_final
    def release(self):
        return ["acquire"]

`, tag)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "@sys([\"d\"])\nclass Ctl%s%d:\n    def __init__(self):\n        self.d = Dev%s()\n\n", tag, i, tag)
		fmt.Fprintf(&b, "    @op_initial_final\n    def go(self):\n        self.d.acquire()\n        self.d.release()\n        return []\n\n")
	}
	return b.String()
}

// directReports is the ground truth: reports from a direct library
// call, marshaled exactly like the server marshals them.
func directReports(t *testing.T, source string) []byte {
	t.Helper()
	mod, err := shelley.LoadSource(source)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := mod.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(reports)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCheckEndpointMatchesDirectLibrary(t *testing.T) {
	_, cl := startServer(t, Config{})
	ctx := context.Background()
	source := readTestdata(t, "valve.py") + "\n" + readTestdata(t, "badsector.py")
	want := directReports(t, source)

	resp, err := cl.Check(ctx, client.CheckRequest{Source: source})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK {
		t.Error("BadSector has findings; OK should be false")
	}
	if resp.Fingerprint != client.Fingerprint(source) {
		t.Errorf("fingerprint = %q", resp.Fingerprint)
	}
	got, _ := json.Marshal(resp.Reports)
	if !bytes.Equal(got, want) {
		t.Errorf("server reports differ from direct CheckAll:\nserver: %s\ndirect: %s", got, want)
	}

	// Cache-only re-check by fingerprint: same bytes, no source upload.
	resp2, err := cl.Check(ctx, client.CheckRequest{Fingerprint: resp.Fingerprint})
	if err != nil {
		t.Fatal(err)
	}
	got2, _ := json.Marshal(resp2.Reports)
	if !bytes.Equal(got2, want) {
		t.Error("fingerprint re-check returned different reports")
	}

	// Single-class filter.
	one, err := cl.Check(ctx, client.CheckRequest{Fingerprint: resp.Fingerprint, Class: "Valve"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Reports) != 1 || one.Reports[0].Class != "Valve" || !one.OK {
		t.Errorf("class-filtered check = %+v", one)
	}
}

func TestCheckErrorMapping(t *testing.T) {
	_, cl := startServer(t, Config{})
	ctx := context.Background()

	cases := []struct {
		name string
		req  client.CheckRequest
		code int
	}{
		{"empty request", client.CheckRequest{}, 400},
		{"mismatched fingerprint", client.CheckRequest{Source: "x=1", Fingerprint: "sha256:feed"}, 400},
		{"unknown fingerprint", client.CheckRequest{Fingerprint: "sha256:deadbeef"}, 404},
		{"unparsable source", client.CheckRequest{Source: "@sys\nclass X:\n  def"}, 422},
		{"unknown class", client.CheckRequest{Source: readTestdata(t, "valve.py"), Class: "Nope"}, 404},
	}
	for _, tc := range cases {
		_, err := cl.Check(ctx, tc.req)
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Errorf("%s: err = %v, want APIError", tc.name, err)
			continue
		}
		if apiErr.StatusCode != tc.code {
			t.Errorf("%s: status = %d, want %d (%s)", tc.name, apiErr.StatusCode, tc.code, apiErr.Message)
		}
	}

	// A module whose composite references a class that is not defined
	// anywhere: loads fine, fails analysis → 422.
	_, err := cl.Check(ctx, client.CheckRequest{Source: readTestdata(t, "badsector.py")})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 422 {
		t.Errorf("unresolved subsystem: err = %v, want 422", err)
	}
}

func TestInferEndpoint(t *testing.T) {
	_, cl := startServer(t, Config{})
	ctx := context.Background()
	source := readTestdata(t, "valve.py")

	resp, err := cl.Infer(ctx, client.InferRequest{Source: source, Class: "Valve"})
	if err != nil {
		t.Fatal(err)
	}
	mod, _ := shelley.LoadSource(source)
	valve, _ := mod.Class("Valve")
	wantOps := valve.Operations()
	if len(resp.Behaviors) != len(wantOps) {
		t.Fatalf("behaviors = %d, want %d", len(resp.Behaviors), len(wantOps))
	}
	for i, op := range wantOps {
		raw, _ := valve.Behavior(op)
		simp, _ := valve.BehaviorSimplified(op)
		if resp.Behaviors[i] != (client.OperationBehavior{Operation: op, Behavior: raw, Simplified: simp}) {
			t.Errorf("behavior[%d] = %+v", i, resp.Behaviors[i])
		}
	}

	one, err := cl.Infer(ctx, client.InferRequest{Fingerprint: resp.Fingerprint, Class: "Valve", Operation: "test"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one.Behaviors) != 1 || one.Behaviors[0].Operation != "test" {
		t.Errorf("single-op infer = %+v", one.Behaviors)
	}

	if _, err := cl.Infer(ctx, client.InferRequest{Source: source, Class: "Valve", Operation: "nope"}); err == nil {
		t.Error("unknown operation should fail")
	}
	if _, err := cl.Infer(ctx, client.InferRequest{Source: source}); err == nil {
		t.Error("missing class should fail")
	}
}

func TestTraceEndpoint(t *testing.T) {
	_, cl := startServer(t, Config{})
	ctx := context.Background()
	source := readTestdata(t, "valve.py")

	accepted, err := cl.Trace(ctx, client.TraceRequest{Source: source, Class: "Valve", Trace: []string{"test", "open", "close"}})
	if err != nil {
		t.Fatal(err)
	}
	if !accepted.Accepted {
		t.Error("test,open,close is a valid complete Valve usage")
	}
	rejected, err := cl.Trace(ctx, client.TraceRequest{Source: source, Class: "Valve", Trace: []string{"open"}})
	if err != nil {
		t.Fatal(err)
	}
	if rejected.Accepted {
		t.Error("open alone must be rejected (test is the initial op)")
	}

	// Replay of a checker counterexample against live subsystems: the
	// paper's BadSector bug, flattened.
	composite := source + "\n" + readTestdata(t, "badsector.py")
	replay, err := cl.Trace(ctx, client.TraceRequest{
		Source: composite, Class: "BadSector",
		Trace: []string{"a.test", "a.open"}, Replay: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replay.ReplayError == "" {
		t.Error("incomplete usage should report a replay error")
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	srv, cl := startServer(t, Config{})
	ctx := context.Background()
	if err := cl.Healthz(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Check(ctx, client.CheckRequest{Source: readTestdata(t, "valve.py")}); err != nil {
		t.Fatal(err)
	}
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`shelleyd_requests_total{endpoint="check",code="200"} 1`,
		"shelleyd_module_cache_misses_total 1",
		"shelleyd_queue_depth 0",
		`shelleyd_pipeline_stage_total{stage="report",kind="misses"}`,
		"shelleyd_request_duration_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// Draining flips healthz to 503.
	shutCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		t.Fatal(err)
	}
	if err := cl.Healthz(ctx); err == nil {
		t.Error("healthz should fail after shutdown")
	}
}

// TestServerSaturationAndQueueTimeout pins the load-shedding contract:
// a full queue answers 503 immediately, and a job that outlives its
// budget in the queue answers 504. The job hook holds the single
// worker at a barrier so queue occupancy is deterministic.
func TestServerSaturationAndQueueTimeout(t *testing.T) {
	entered := make(chan struct{}, 16)
	release := make(chan struct{})
	_, cl := startServer(t, Config{
		Workers: 1, QueueDepth: 1, RequestTimeout: 30 * time.Second,
		jobHook: func() { entered <- struct{}{}; <-release },
	})
	ctx := context.Background()

	var wg sync.WaitGroup
	results := make([]error, 2)
	wg.Add(1)
	go func() { defer wg.Done(); _, results[0] = cl.Check(ctx, client.CheckRequest{Source: syntheticSource(4, "slow")}) }()
	<-entered // the worker now holds job 1; the queue is empty
	wg.Add(1)
	go func() { defer wg.Done(); _, results[1] = cl.Check(ctx, client.CheckRequest{Source: syntheticSource(4, "fill")}) }()
	waitMetric(t, cl, "shelleyd_queue_depth", 1) // job 2 fills the only slot

	_, err := cl.Check(ctx, client.CheckRequest{Source: syntheticSource(3, "extra")})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 503 {
		t.Errorf("overflow request: err = %v, want 503", err)
	}
	close(release)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Errorf("admitted request %d failed: %v", i, err)
		}
	}

	// Queue expiry: with a nanosecond budget the job is dead by the
	// time a worker dequeues it.
	_, cl2 := startServer(t, Config{Workers: 1, QueueDepth: 4, RequestTimeout: time.Nanosecond})
	_, err = cl2.Check(ctx, client.CheckRequest{Source: syntheticSource(2, "dead")})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != 504 {
		t.Errorf("expired request: err = %v, want 504", err)
	}
}

// waitHealthzDown polls until healthz reports draining.
func waitHealthzDown(t *testing.T, cl *client.Client) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := cl.Healthz(context.Background()); err != nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("healthz never flipped to draining")
}

// waitMetric polls /metrics until name reaches at least want.
func waitMetric(t *testing.T, cl *client.Client, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		text, err := cl.Metrics(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if v, ok := client.ParseMetric(text, name); ok && v >= want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("metric %s never reached %v", name, want)
}

// TestServerConcurrentClientsRace is the acceptance test: ≥100
// concurrent clients mixing identical and distinct sources against a
// live daemon; every response must be byte-identical to a direct
// Module.CheckAll, the coalesce/cache-hit counters must be observed
// nonzero, and a drain mid-traffic must not drop any admitted request.
// Run with -race in CI.
func TestServerConcurrentClientsRace(t *testing.T) {
	const (
		identicalClients = 60
		distinctClients  = 48
		distinctSources  = 8
	)
	// The job hook holds the workers until every client is inside a
	// handler, so identical requests are guaranteed to overlap — the
	// coalesce counter becomes deterministic instead of a scheduling
	// coin flip.
	release := make(chan struct{})
	_, cl := startServer(t, Config{
		Workers: 2, QueueDepth: identicalClients + distinctClients,
		RequestTimeout: 60 * time.Second, CheckWorkers: 2,
		jobHook: func() { <-release },
	})
	ctx := context.Background()

	shared := syntheticSource(40, "shared")
	wantShared := directReports(t, shared)
	distinct := make([]string, distinctSources)
	wantDistinct := make([][]byte, distinctSources)
	for i := range distinct {
		distinct[i] = syntheticSource(6, fmt.Sprintf("v%d", i))
		wantDistinct[i] = directReports(t, distinct[i])
	}

	start := make(chan struct{})
	errs := make([]error, identicalClients+distinctClients)
	var wg sync.WaitGroup
	worker := func(slot int, source string, want []byte) {
		defer wg.Done()
		<-start
		resp, err := cl.Check(ctx, client.CheckRequest{Source: source})
		if err != nil {
			errs[slot] = err
			return
		}
		got, err := json.Marshal(resp.Reports)
		if err != nil {
			errs[slot] = err
			return
		}
		if !bytes.Equal(got, want) {
			errs[slot] = fmt.Errorf("reports differ from direct CheckAll:\nserver: %s\ndirect: %s", got, want)
		}
	}
	for i := 0; i < identicalClients; i++ {
		wg.Add(1)
		go worker(i, shared, wantShared)
	}
	for i := 0; i < distinctClients; i++ {
		wg.Add(1)
		go worker(identicalClients+i, distinct[i%distinctSources], wantDistinct[i%distinctSources])
	}
	close(start)
	// Let every client reach its handler (blocked on the held pool or
	// coalesced onto a held leader), then release the workers.
	waitMetric(t, cl, "shelleyd_inflight_requests", identicalClients+distinctClients)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coalesced, _ := client.ParseMetric(text, "shelleyd_coalesced_total")
	moduleHits, _ := client.ParseMetric(text, "shelleyd_module_cache_hits_total")
	if coalesced == 0 {
		t.Error("coalesced = 0; identical in-flight requests must share one execution")
	}
	if moduleHits == 0 {
		t.Error("module cache hits = 0; 60 identical uploads must share one resident module")
	}
	t.Logf("coalesced=%v moduleHits=%v", coalesced, moduleHits)
}

// TestServerShutdownDrainsInFlight verifies the drain contract behind
// SIGTERM: once every request is inside a handler, Shutdown must let
// all of them complete and deliver correct bodies — none dropped.
func TestServerShutdownDrainsInFlight(t *testing.T) {
	const inFlight = 24
	release := make(chan struct{})
	srv, cl := startServer(t, Config{
		Workers: 2, QueueDepth: inFlight + 8, RequestTimeout: 60 * time.Second,
		jobHook: func() { <-release },
	})
	ctx := context.Background()

	sources := make([]string, inFlight)
	want := make([][]byte, inFlight)
	for i := range sources {
		sources[i] = syntheticSource(10, fmt.Sprintf("drain%d", i))
		want[i] = directReports(t, sources[i])
	}

	errs := make([]error, inFlight)
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := cl.Check(ctx, client.CheckRequest{Source: sources[i]})
			if err != nil {
				errs[i] = err
				return
			}
			got, _ := json.Marshal(resp.Reports)
			if !bytes.Equal(got, want[i]) {
				errs[i] = fmt.Errorf("reports differ after drain")
			}
		}(i)
	}

	// Wait until every request is admitted and held, then drain
	// mid-traffic: Shutdown starts while all 24 are in flight, the
	// workers are released only after draining has begun.
	waitMetric(t, cl, "shelleyd_inflight_requests", inFlight)
	shutDone := make(chan error, 1)
	shutCtx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	go func() { shutDone <- srv.Shutdown(shutCtx) }()
	waitHealthzDown(t, cl)
	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("in-flight request %d dropped by drain: %v", i, err)
		}
	}

	// After drain, new work is refused.
	if _, err := cl.Check(ctx, client.CheckRequest{Source: sources[0]}); err == nil {
		t.Error("check after shutdown should fail")
	}
}

// TestCoalescerUnit pins the leader/follower mechanics without HTTP.
func TestCoalescerUnit(t *testing.T) {
	co := newCoalescer()
	c1, leader1 := co.get("k")
	if !leader1 {
		t.Fatal("first get must lead")
	}
	c2, leader2 := co.get("k")
	if leader2 || c1 != c2 {
		t.Fatal("second get must follow the same call")
	}
	co.forget("k")
	c1.resolve(200, []byte("x"))
	<-c2.done
	if c2.status != 200 || string(c2.body) != "x" {
		t.Fatalf("follower saw %d %q", c2.status, c2.body)
	}
	if _, leader3 := co.get("k"); !leader3 {
		t.Fatal("after forget, the key must lead again")
	}
}

// TestModuleCacheEviction keeps residency bounded.
func TestModuleCacheEviction(t *testing.T) {
	met := newMetrics()
	mc := newModuleCache(2, met, nil)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		src := syntheticSource(1, fmt.Sprintf("ev%d", i))
		if _, err := mc.get(ctx, client.Fingerprint(src), src); err != nil {
			t.Fatal(err)
		}
	}
	mc.mu.Lock()
	n := len(mc.entries)
	mc.mu.Unlock()
	if n > 2 {
		t.Errorf("resident modules = %d, want ≤ 2", n)
	}
	if met.moduleEvictions.Load() == 0 {
		t.Error("evictions not counted")
	}
	// Evicted modules reload transparently from source.
	src := syntheticSource(1, "ev0")
	if _, err := mc.get(ctx, client.Fingerprint(src), src); err != nil {
		t.Fatal(err)
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"strconv"
	"time"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/mine"
	"github.com/shelley-go/shelley/internal/obs"
	"github.com/shelley-go/shelley/internal/telemetry"
)

// statusWindows are the rolling windows /v1/status reports per
// endpoint, label → span.
var statusWindows = []struct {
	label string
	span  time.Duration
}{
	{"10s", 10 * time.Second},
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// telemetryTiers scales the two-ring layout to the configured base
// interval: at the default 1s the fine ring holds 10 minutes at
// second resolution and the coarse ring 2 hours at 15s.
func telemetryTiers(interval time.Duration) []telemetry.Tier {
	return []telemetry.Tier{
		{Interval: interval, Slots: 600},
		{Interval: 15 * interval, Slots: 480},
	}
}

// teleLoop drives the engine clock from New until stopTelemetry. The
// engine itself is passive — this ticker is the only goroutine the
// telemetry layer adds.
func (s *Server) teleLoop() {
	defer close(s.teleDone)
	t := time.NewTicker(s.cfg.TelemetryInterval)
	defer t.Stop()
	// Prime immediately so /v1/status answers within one interval of
	// boot instead of two.
	s.engine.Tick(time.Now())
	for {
		select {
		case <-s.teleCtx.Done():
			return
		case now := <-t.C:
			s.engine.Tick(now)
		}
	}
}

func (s *Server) stopTelemetry() {
	if s.engine == nil {
		return
	}
	s.teleStopOnce.Do(func() {
		s.teleCancel()
		<-s.teleDone
	})
}

// mineSnap captures the mining subsystem's counters and reports for
// the metric families; nil on daemons without -mine.
func (s *Server) mineSnap() *mineSnapshot {
	if s.miner == nil {
		return nil
	}
	return &mineSnapshot{counters: s.miner.Counters(), reports: s.miner.Reports()}
}

// onMineVerdict turns drift verdict flips into alert events: entering
// DRIFT raises a page carrying the counterexample trace, leaving it
// clears the page. Called from the mining loop with the class state
// locked, so it must not call back into the miner (SetAlert/ClearAlert
// only touch the engine).
func (s *Server) onMineVerdict(prev string, r mine.Report) {
	key := "drift:" + r.ClassFP
	if r.Verdict == mine.VerdictDrift {
		s.engine.SetAlert(telemetry.Alert{
			Key:      key,
			Severity: "page",
			Since:    time.Now(),
			Message: fmt.Sprintf("model drift on %s: fleet behavior diverges from the static model (%d mined vs %d static states)",
				r.ClassFP, r.MinedStates, r.StaticStates),
			Counterexample: r.Counterexample,
		})
		return
	}
	if prev == mine.VerdictDrift {
		s.engine.ClearAlert(key)
	}
}

// maybeExemplar tail-samples interesting finished requests: panics
// (500), structured errors (422/5xx), and latency-threshold breaches
// keep their full span tree in the exemplar ring; everything else
// discards its buffered spans. Runs after span.End so the root span is
// already in the trace buffer.
func (s *Server) maybeExemplar(endpoint, traceID string, code int, elapsed time.Duration) {
	if s.engine == nil {
		return
	}
	thr, ok := s.latThresh[endpoint]
	if !ok {
		thr = s.cfg.ExemplarLatency
	}
	var reason string
	switch {
	case code == http.StatusInternalServerError:
		// 500 is the contained-panic status: the worker boundary
		// answers it for nothing else.
		reason = "panic"
	case code >= 500 || code == http.StatusUnprocessableEntity:
		reason = "error"
	case elapsed > thr:
		reason = "latency"
	}
	if reason == "" {
		if s.traceBuf != nil {
			s.traceBuf.Discard(traceID)
		}
		return
	}
	var spans []obs.SpanData
	var dropped int
	if s.traceBuf != nil {
		spans, dropped, _ = s.traceBuf.Take(traceID)
	}
	s.engine.AddExemplar(telemetry.Exemplar{
		TraceID:      traceID,
		Endpoint:     endpoint,
		Code:         code,
		Reason:       reason,
		Duration:     elapsed,
		Bucket:       telemetry.BucketIndex(elapsed),
		At:           time.Now(),
		Spans:        spans,
		SpansDropped: dropped,
	})
	s.met.exemplars.Add(1)
}

// handleStatus serves the live telemetry view: JSON by default, a
// self-contained HTML dashboard with ?format=html. 404s (with a hint)
// on daemons running without telemetry.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if s.engine == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(client.ErrorResponse{
			Error: "telemetry disabled; start shelleyd with -telemetry-interval > 0",
		})
		return
	}
	resp := s.statusResponse()
	if r.URL.Query().Get("format") == "html" {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if err := statusTmpl.Execute(w, statusPage{Resp: resp}); err != nil {
			s.met.writeErrors.Add(1)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(resp); err != nil {
		s.met.writeErrors.Add(1)
	}
}

func (s *Server) statusResponse() *client.StatusResponse {
	now := time.Now()
	start := s.engine.Start()
	resp := &client.StatusResponse{
		Now:      now,
		Start:    start,
		Interval: s.cfg.TelemetryInterval,
		Draining: s.draining.Load(),
		Gauges:   s.engine.Gauges(),
	}
	if !start.IsZero() {
		resp.UptimeSec = now.Sub(start).Seconds()
	}

	for _, name := range s.engine.Endpoints() {
		ep := client.EndpointStatus{
			Endpoint: name,
			Codes:    make(map[string]uint64),
			Windows:  make(map[string]client.WindowStats, len(statusWindows)),
		}
		if em := s.met.endpoint(name); em != nil {
			for i := range em.codes {
				if n := em.codes[i].Load(); n != 0 {
					ep.Codes[strconv.Itoa(i+100)] = n
				}
			}
		}
		for _, win := range statusWindows {
			st, ok := s.engine.Endpoint(name, win.span)
			if !ok {
				continue
			}
			ep.Windows[win.label] = client.WindowStats{
				Window:    st.Window,
				Total:     st.Total,
				Errors:    st.Errors,
				Rate:      st.Rate,
				ErrorRate: st.ErrorRate,
				P50:       st.P50,
				P95:       st.P95,
				P99:       st.P99,
			}
		}
		resp.Endpoints = append(resp.Endpoints, ep)
	}

	for _, st := range s.engine.SLOStatuses() {
		resp.SLOs = append(resp.SLOs, client.SLOStatus{
			Name:            st.SLO.Name,
			Endpoint:        st.SLO.Endpoint,
			Target:          st.SLO.Target,
			Latency:         st.SLO.Latency,
			BadFrac:         st.BadFrac,
			Window:          st.Window,
			BurnFast:        st.BurnFast,
			BurnSlow:        st.BurnSlow,
			BudgetRemaining: st.BudgetRemaining,
			Firing:          st.Firing,
		})
	}

	resp.Alerts = []client.AlertStatus{}
	for _, a := range s.engine.Alerts() {
		resp.Alerts = append(resp.Alerts, client.AlertStatus{
			Key:            a.Key,
			Severity:       a.Severity,
			Since:          a.Since,
			Message:        a.Message,
			Value:          a.Value,
			Counterexample: a.Counterexample,
		})
	}

	resp.Exemplars = []client.ExemplarStatus{}
	for _, x := range s.engine.Exemplars() {
		ex := client.ExemplarStatus{
			TraceID:      x.TraceID,
			Endpoint:     x.Endpoint,
			Code:         x.Code,
			Reason:       x.Reason,
			Duration:     x.Duration,
			Bucket:       x.Bucket,
			BucketLe:     telemetry.BucketLabel(x.Bucket),
			At:           x.At,
			SpansDropped: x.SpansDropped,
		}
		spans := append([]obs.SpanData(nil), x.Spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		for _, sd := range spans {
			es := client.ExemplarSpan{
				SpanID:   sd.SpanID,
				ParentID: sd.ParentID,
				Name:     sd.Name,
				Start:    sd.Start,
				Duration: sd.Duration(),
			}
			if len(sd.Attrs) > 0 {
				es.Attrs = make(map[string]string, len(sd.Attrs))
				for _, a := range sd.Attrs {
					es.Attrs[a.Key] = a.Value
				}
			}
			if len(sd.Counts) > 0 {
				es.Counts = make(map[string]uint64, len(sd.Counts))
				for k, v := range sd.Counts {
					es.Counts[k] = v
				}
			}
			ex.Spans = append(ex.Spans, es)
		}
		resp.Exemplars = append(resp.Exemplars, ex)
	}
	return resp
}

// statusPage is the template context of the HTML dashboard.
type statusPage struct {
	Resp *client.StatusResponse
}

// GaugeRows returns the gauges sorted by name.
func (p statusPage) GaugeRows() []struct {
	Name  string
	Value float64
} {
	names := make([]string, 0, len(p.Resp.Gauges))
	for n := range p.Resp.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Name  string
		Value float64
	}, 0, len(names))
	for _, n := range names {
		out = append(out, struct {
			Name  string
			Value float64
		}{n, p.Resp.Gauges[n]})
	}
	return out
}

var statusTmplFuncs = template.FuncMap{
	"dur": func(d time.Duration) string {
		switch {
		case d <= 0:
			return "–"
		case d < time.Millisecond:
			return fmt.Sprintf("%.0fµs", float64(d)/1e3)
		case d < time.Second:
			return fmt.Sprintf("%.2fms", float64(d)/1e6)
		default:
			return fmt.Sprintf("%.2fs", float64(d)/1e9)
		}
	},
	"rate": func(v float64) string { return fmt.Sprintf("%.1f", v) },
	"pct":  func(v float64) string { return fmt.Sprintf("%.2f%%", v*100) },
	"win": func(ep client.EndpointStatus, label string) client.WindowStats {
		return ep.Windows[label]
	},
	"haswin": func(ep client.EndpointStatus, label string) bool {
		_, ok := ep.Windows[label]
		return ok
	},
	"windows": func() []string {
		out := make([]string, 0, len(statusWindows))
		for _, w := range statusWindows {
			out = append(out, w.label)
		}
		return out
	},
	"mulpct": func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 100
		}
		return v * 100
	},
}

// The dashboard is fully self-contained — inline CSS, no scripts, no
// external assets — and refreshes itself with a meta tag, so it works
// from curl-saved files and locked-down browsers alike.
var statusTmpl = template.Must(template.New("status").Funcs(statusTmplFuncs).Parse(`<!doctype html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>shelleyd status</title>
<style>
body{background:#101418;color:#d7dde3;font:13px/1.45 ui-monospace,SFMono-Regular,Menlo,monospace;margin:24px;}
h1{font-size:16px;margin:0 0 4px} h2{font-size:13px;margin:20px 0 6px;color:#8fa3b5;text-transform:uppercase;letter-spacing:.08em}
table{border-collapse:collapse;width:100%;margin:4px 0}
th,td{padding:3px 10px;text-align:right;border-bottom:1px solid #1e2630}
th{color:#8fa3b5;font-weight:normal} td:first-child,th:first-child{text-align:left}
.muted{color:#5c6b7a} .ok{color:#7dd3a0} .warn{color:#e8c468} .page{color:#ef7d7d;font-weight:bold}
.alert{padding:6px 10px;margin:4px 0;border-left:3px solid #ef7d7d;background:#1a1214}
.alert.warn{border-left-color:#e8c468;background:#1a1712}
.bar{display:inline-block;height:8px;background:#2a3542;width:120px;vertical-align:middle;margin-left:8px}
.bar i{display:block;height:8px;background:#7dd3a0}
.spans{margin:2px 0 10px 16px;color:#8fa3b5}
details{margin:6px 0} summary{cursor:pointer}
</style></head><body>
<h1>shelleyd <span class="muted">· {{.Resp.Now.Format "15:04:05"}} · up {{printf "%.0fs" .Resp.UptimeSec}}{{if .Resp.Draining}} · <span class="page">DRAINING</span>{{end}}</span></h1>

{{if .Resp.Alerts}}<h2>Alerts</h2>
{{range .Resp.Alerts}}<div class="alert {{.Severity}}"><span class="{{.Severity}}">{{.Severity}}</span> {{.Key}} — {{.Message}} <span class="muted">since {{.Since.Format "15:04:05"}}</span>
{{if .Counterexample}}<div class="spans">counterexample: {{range .Counterexample}}{{.}} {{end}}</div>{{end}}</div>
{{end}}{{else}}<h2>Alerts</h2><div class="ok">none firing</div>{{end}}

<h2>Endpoints</h2>
<table><tr><th>endpoint</th><th>window</th><th>rate/s</th><th>err%</th><th>p50</th><th>p95</th><th>p99</th><th>total</th></tr>
{{range $ep := .Resp.Endpoints}}{{range $label := windows}}{{if haswin $ep $label}}{{with (win $ep $label)}}
<tr><td>{{$ep.Endpoint}}</td><td>{{$label}}</td><td>{{rate .Rate}}</td><td>{{pct .ErrorRate}}</td><td>{{dur .P50}}</td><td>{{dur .P95}}</td><td>{{dur .P99}}</td><td>{{.Total}}</td></tr>
{{end}}{{end}}{{end}}{{end}}
</table>

{{if .Resp.SLOs}}<h2>SLOs</h2>
<table><tr><th>objective</th><th>target</th><th>bad</th><th>burn 5m</th><th>burn 1h</th><th>budget left</th><th>state</th></tr>
{{range .Resp.SLOs}}<tr><td>{{.Name}}</td><td>{{pct .Target}}{{if .Latency}} &lt; {{dur .Latency}}{{end}}</td><td>{{pct .BadFrac}}</td><td>{{rate .BurnFast}}x</td><td>{{rate .BurnSlow}}x</td><td>{{pct .BudgetRemaining}}<span class="bar"><i style="width:{{printf "%.0f" (mulpct .BudgetRemaining)}}%"></i></span></td><td>{{if .Firing}}<span class="{{.Firing}}">{{.Firing}}</span>{{else}}<span class="ok">ok</span>{{end}}</td></tr>
{{end}}</table>{{end}}

<h2>Gauges</h2>
<table>{{range .GaugeRows}}<tr><td>{{.Name}}</td><td>{{printf "%.0f" .Value}}</td></tr>{{end}}</table>

<h2>Exemplars <span class="muted">(tail-sampled interesting requests, newest first)</span></h2>
{{if .Resp.Exemplars}}{{range .Resp.Exemplars}}
<details><summary><span class="{{if eq .Reason "latency"}}warn{{else}}page{{end}}">{{.Reason}}</span> {{.Endpoint}} {{.Code}} · {{dur .Duration}} <span class="muted">≤{{.BucketLe}} · trace {{.TraceID}} · {{.At.Format "15:04:05"}}</span></summary>
<div class="spans">{{range .Spans}}{{.Name}} {{dur .Duration}}{{if .ParentID}} ↳{{end}}<br>{{end}}{{if .SpansDropped}}(+{{.SpansDropped}} spans dropped){{end}}</div>
</details>
{{end}}{{else}}<div class="muted">none captured</div>{{end}}
</body></html>`))

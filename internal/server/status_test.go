package server

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/telemetry"
)

// TestStatusDisabled404 pins the discoverability contract: a daemon
// running without telemetry answers /v1/status with 404 and a hint
// naming the flag that turns it on.
func TestStatusDisabled404(t *testing.T) {
	t.Parallel()
	_, cl := startServer(t, Config{Workers: 1})
	_, err := cl.Status(context.Background())
	if err == nil {
		t.Fatal("Status succeeded on a daemon without telemetry")
	}
	apiErr, ok := err.(*client.APIError)
	if !ok || apiErr.StatusCode != 404 {
		t.Fatalf("Status without telemetry: %v, want 404 APIError", err)
	}
	if !strings.Contains(apiErr.Message, "-telemetry-interval") {
		t.Errorf("404 hint %q should name the enabling flag", apiErr.Message)
	}
}

// TestStatusTelemetryAcceptance is the tentpole's acceptance test. One
// daemon with a fast telemetry clock serves a deterministic latency
// ramp (pooled jobs sleep 10→100ms log-uniformly) followed by injected
// panics, and /v1/status must report:
//
//   - a rolling check p99 within 10% of the p99 the client measured
//     with its own wall clock,
//   - the latency SLO burning (every ramp request breaches 1ms) and the
//     availability SLO paging after the panics,
//   - the breaching requests in the exemplar ring with their span
//     trees — latency exemplars carrying the pipeline stages, panic
//     exemplars at least the root span (the panic fires before any
//     stage runs),
//   - sane gauges and since-boot status-code counts.
func TestStatusTelemetryAcceptance(t *testing.T) {
	const (
		interval = 50 * time.Millisecond
		rampN    = 100
		panicN   = 5
	)
	// sleeps is a log-uniform ramp from 10ms to 80ms (filling the fine
	// buckets across nearly a decade) topped by a dense plateau of the
	// 10 largest samples spread inside the (86.6ms, 100ms] bucket. The
	// p99 rank lands inside that well-populated bucket, so the engine's
	// within-bucket interpolation tracks the true quantile instead of
	// snapping to a sparse bucket's upper bound.
	sleeps := make([]time.Duration, rampN)
	for i := 0; i < rampN-10; i++ {
		sleeps[i] = time.Duration(float64(10*time.Millisecond) * math.Pow(8, float64(i)/float64(rampN-11)))
	}
	for i := rampN - 10; i < rampN; i++ {
		sleeps[i] = 86*time.Millisecond + time.Duration(i-(rampN-10))*1100*time.Microsecond
	}

	var mode atomic.Int32 // 0 pass-through, 1 ramp sleep, 2 panic
	var rampIdx atomic.Int32
	cfg := Config{
		Workers:           2,
		Telemetry:         true,
		TelemetryInterval: interval,
		SLOs: []telemetry.SLO{
			{Name: "check-availability", Endpoint: "check", Target: 0.999},
			{Name: "check-latency", Endpoint: "check", Target: 0.99, Latency: time.Millisecond},
		},
		runHook: func() {
			switch mode.Load() {
			case 1:
				time.Sleep(sleeps[int(rampIdx.Add(1)-1)%len(sleeps)])
			case 2:
				panic("injected telemetry panic")
			}
		},
	}
	_, cl := startServer(t, cfg)
	ctx := context.Background()

	// Phase 1: the ramp. Distinct sources defeat the module cache and
	// the coalescer, so every request is a pooled cold check that runs
	// the hook. The client measures each request with its own clock.
	mode.Store(1)
	measured := make([]time.Duration, 0, rampN)
	for i := 0; i < rampN; i++ {
		src := syntheticSource(1, fmt.Sprintf("Ramp%d", i))
		t0 := time.Now()
		if _, err := cl.Check(ctx, client.CheckRequest{Source: src}); err != nil {
			t.Fatalf("ramp check %d: %v", i, err)
		}
		measured = append(measured, time.Since(t0))
	}
	mode.Store(0)
	time.Sleep(3 * interval) // let the engine snapshot the tail of the ramp

	sort.Slice(measured, func(i, j int) bool { return measured[i] < measured[j] })
	clientP99 := measured[int(math.Ceil(0.99*float64(len(measured))))-1]

	resp, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	check := findEndpoint(t, resp, "check")
	win, ok := check.Windows["10s"]
	if !ok {
		t.Fatalf("check endpoint has no 10s window: %+v", check.Windows)
	}
	if win.Total < rampN {
		t.Fatalf("10s window total = %d, want >= %d (ramp must fit the window)", win.Total, rampN)
	}
	if win.Rate <= 0 {
		t.Errorf("10s rolling rate = %v, want > 0", win.Rate)
	}
	if diff := math.Abs(float64(win.P99)-float64(clientP99)) / float64(clientP99); diff > 0.10 {
		t.Errorf("server p99 %v vs client-measured p99 %v: %.1f%% apart, want <= 10%%",
			win.P99, clientP99, diff*100)
	}
	if win.P50 >= win.P99 {
		t.Errorf("p50 %v >= p99 %v", win.P50, win.P99)
	}
	if check.Codes["200"] < rampN {
		t.Errorf("since-boot 200 count = %d, want >= %d", check.Codes["200"], rampN)
	}

	// The latency SLO (99% under 1ms) is torched by the ramp: every
	// request took >= 10ms, so the burn alert must be firing and the
	// budget gone.
	lat := findSLO(t, resp, "check-latency")
	if lat.Firing == "" {
		t.Errorf("check-latency SLO not firing after 100%% breach: %+v", lat)
	}
	if lat.BudgetRemaining != 0 {
		t.Errorf("check-latency budget remaining = %v, want 0", lat.BudgetRemaining)
	}
	if !hasAlert(resp, "slo:check-latency") {
		t.Errorf("no slo:check-latency alert in %+v", resp.Alerts)
	}
	// The availability SLO is clean so far.
	if avail := findSLO(t, resp, "check-availability"); avail.Firing != "" {
		t.Errorf("check-availability firing before any error: %+v", avail)
	}

	// Breaching requests are in the exemplar ring with their span
	// trees: a completed slow check carries the root plus its pipeline
	// stage spans.
	exLat := findExemplar(t, resp, "latency")
	if exLat.Code != 200 || exLat.Duration < 10*time.Millisecond {
		t.Errorf("latency exemplar %+v: want a slow 200", exLat)
	}
	assertSpanTree(t, exLat, 2)

	// Phase 2: injected panics flip availability.
	mode.Store(2)
	for i := 0; i < panicN; i++ {
		_, err := cl.Check(ctx, client.CheckRequest{Source: syntheticSource(1, fmt.Sprintf("Boom%d", i))})
		apiErr, ok := err.(*client.APIError)
		if !ok || apiErr.StatusCode != 500 {
			t.Fatalf("panic check %d: %v, want 500", i, err)
		}
	}
	mode.Store(0)
	// The burn windows longer than the fine ring are served from the
	// 15x coarse tier, so wait out one coarse interval for the errors
	// to reach it.
	time.Sleep(16 * interval)

	resp, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	avail := findSLO(t, resp, "check-availability")
	// 5 errors over ~105 requests is a ~4.7% bad fraction against a
	// 0.1% budget — far past the 14.4x page threshold on every clamped
	// window.
	if avail.Firing != "page" {
		t.Errorf("check-availability firing = %q after panics, want page (%+v)", avail.Firing, avail)
	}
	if !hasAlert(resp, "slo:check-availability") {
		t.Errorf("no slo:check-availability alert in %+v", resp.Alerts)
	}
	exPanic := findExemplar(t, resp, "panic")
	if exPanic.Code != 500 {
		t.Errorf("panic exemplar code = %d, want 500", exPanic.Code)
	}
	assertSpanTree(t, exPanic, 1)
	if root := exPanic.Spans[0]; root.Attrs["status"] != "500" {
		t.Errorf("panic exemplar root span attrs = %v, want status=500", root.Attrs)
	}

	if len(resp.Gauges) == 0 {
		t.Error("gauges map is empty")
	}
	for _, g := range []string{"shelleyd_queue_depth", "shelleyd_workers_busy", "shelleyd_inflight_requests"} {
		if _, ok := resp.Gauges[g]; !ok {
			t.Errorf("gauge %s missing from status", g)
		}
	}
	if resp.UptimeSec <= 0 || resp.Interval != interval {
		t.Errorf("uptime %v / interval %v, want > 0 and %v", resp.UptimeSec, resp.Interval, interval)
	}
	if v, err := cl.Metrics(ctx); err != nil {
		t.Fatal(err)
	} else if n, ok := client.ParseMetric(v, "shelleyd_exemplars_total"); !ok || n == 0 {
		t.Errorf("shelleyd_exemplars_total = %v (present %v), want > 0", n, ok)
	}
}

// TestStatusDriftAlert wires the mining subsystem's verdict flips into
// the alert surface: a DRIFT flip must appear on /v1/status as a page
// carrying the minimized counterexample.
func TestStatusDriftAlert(t *testing.T) {
	t.Parallel()
	srv, cl := startServer(t, Config{
		Workers: 2, Mine: true, MineInterval: time.Hour,
		Telemetry: true, TelemetryInterval: 50 * time.Millisecond,
	})
	ctx := context.Background()
	source, classFP, spec := valveSpec(t)

	if _, err := cl.Check(ctx, client.CheckRequest{Source: source}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var events []client.IngestEvent
	for i := 0; i < 32; i++ {
		tr, ok := spec.RandomAccepted(rng, 12)
		if !ok {
			t.Fatal("valve spec accepts nothing within length 12")
		}
		events = append(events, client.IngestEvent{
			ClassFP: classFP, Device: fmt.Sprintf("dev-%d", i%8), Events: tr, Status: "ok",
		})
	}
	if _, err := cl.Ingest(ctx, events); err != nil {
		t.Fatal(err)
	}
	if st := srv.mineOnce(); st.Errors != 0 || st.Mined != 1 {
		t.Fatalf("first round stats %+v", st)
	}
	resp, err := cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if hasAlert(resp, "drift:"+classFP) {
		t.Fatalf("drift alert firing on conforming traffic: %+v", resp.Alerts)
	}

	drifting := offModelTrace(t, spec)
	if _, err := cl.Ingest(ctx, []client.IngestEvent{{ClassFP: classFP, Device: "rogue", Events: drifting, Status: "ok"}}); err != nil {
		t.Fatal(err)
	}
	if st := srv.mineOnce(); st.Errors != 0 || st.Mined != 1 {
		t.Fatalf("drift round stats %+v", st)
	}
	resp, err = cl.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var alert *client.AlertStatus
	for i := range resp.Alerts {
		if resp.Alerts[i].Key == "drift:"+classFP {
			alert = &resp.Alerts[i]
		}
	}
	if alert == nil {
		t.Fatalf("no drift alert for %s in %+v", classFP, resp.Alerts)
	}
	if alert.Severity != "page" {
		t.Errorf("drift alert severity = %q, want page", alert.Severity)
	}
	if len(alert.Counterexample) == 0 || spec.Accepts(alert.Counterexample) {
		t.Errorf("drift alert counterexample %v should be non-empty and rejected by the spec", alert.Counterexample)
	}
	if !strings.Contains(alert.Message, classFP) {
		t.Errorf("drift alert message %q should name the class", alert.Message)
	}
}

// TestStatusHTMLDashboard renders the operator dashboard with alerts
// and exemplars populated and checks it is a self-contained page.
func TestStatusHTMLDashboard(t *testing.T) {
	var boom atomic.Bool
	srv, cl := startServer(t, Config{
		Workers: 1, Telemetry: true, TelemetryInterval: 20 * time.Millisecond,
		runHook: func() {
			if boom.Load() {
				panic("dashboard panic")
			}
		},
	})
	ctx := context.Background()
	if _, err := cl.Check(ctx, client.CheckRequest{Source: syntheticSource(1, "Dash")}); err != nil {
		t.Fatal(err)
	}
	boom.Store(true)
	if _, err := cl.Check(ctx, client.CheckRequest{Source: syntheticSource(1, "DashBoom")}); err == nil {
		t.Fatal("panicking check succeeded")
	}
	boom.Store(false)
	time.Sleep(60 * time.Millisecond)

	req := httptest.NewRequest("GET", "/v1/status?format=html", nil)
	w := httptest.NewRecorder()
	srv.Handler().ServeHTTP(w, req)
	res := w.Result()
	if res.StatusCode != 200 {
		t.Fatalf("dashboard status = %d", res.StatusCode)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("dashboard content type = %q", ct)
	}
	body := w.Body.String()
	for _, want := range []string{"<!doctype html", "shelleyd", "Endpoints", "Exemplars", "http-equiv=\"refresh\"", ">panic<"} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(body, "http://") || strings.Contains(body, "<script") {
		t.Error("dashboard must be self-contained: no external assets, no scripts")
	}
}

func findEndpoint(t *testing.T, resp *client.StatusResponse, name string) client.EndpointStatus {
	t.Helper()
	for _, ep := range resp.Endpoints {
		if ep.Endpoint == name {
			return ep
		}
	}
	t.Fatalf("endpoint %s not in status (%d endpoints)", name, len(resp.Endpoints))
	return client.EndpointStatus{}
}

func findSLO(t *testing.T, resp *client.StatusResponse, name string) client.SLOStatus {
	t.Helper()
	for _, s := range resp.SLOs {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("SLO %s not in status (%+v)", name, resp.SLOs)
	return client.SLOStatus{}
}

func hasAlert(resp *client.StatusResponse, key string) bool {
	for _, a := range resp.Alerts {
		if a.Key == key {
			return true
		}
	}
	return false
}

func findExemplar(t *testing.T, resp *client.StatusResponse, reason string) client.ExemplarStatus {
	t.Helper()
	for _, x := range resp.Exemplars {
		if x.Reason == reason {
			return x
		}
	}
	t.Fatalf("no %s exemplar among %d retained", reason, len(resp.Exemplars))
	return client.ExemplarStatus{}
}

// assertSpanTree checks an exemplar carries a well-formed span tree:
// at least minSpans spans, exactly one root (the http.check request
// span), every child's parent present, and spans in start order.
func assertSpanTree(t *testing.T, x client.ExemplarStatus, minSpans int) {
	t.Helper()
	if len(x.Spans) < minSpans {
		t.Fatalf("%s exemplar has %d spans, want >= %d", x.Reason, len(x.Spans), minSpans)
	}
	ids := make(map[string]bool, len(x.Spans))
	roots := 0
	for _, s := range x.Spans {
		ids[s.SpanID] = true
		if s.ParentID == "" {
			roots++
			if s.Name != "http.check" {
				t.Errorf("root span name = %q, want http.check", s.Name)
			}
		}
	}
	if roots != 1 {
		t.Errorf("%s exemplar has %d root spans, want 1", x.Reason, roots)
	}
	for _, s := range x.Spans {
		if s.ParentID != "" && !ids[s.ParentID] {
			t.Errorf("span %s has parent %s outside the tree", s.Name, s.ParentID)
		}
	}
	for i := 1; i < len(x.Spans); i++ {
		if x.Spans[i].Start.Before(x.Spans[i-1].Start) {
			t.Errorf("spans not in start order at %d", i)
		}
	}
}

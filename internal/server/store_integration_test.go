package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/store"
)

// rawPost hits a daemon endpoint without the client's decoding layer,
// so tests can compare response bodies byte for byte.
func rawPost(t *testing.T, base, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// bootStoreServer opens (or reopens) the artifact store at dir (over
// fs; nil means the real disk) and boots a daemon over it. Teardown is
// the caller's: the returned shutdown runs a clean drain (flushing the
// store) and closes it.
func bootStoreServer(t *testing.T, dir string, fs store.FS) (st *store.Store, base string, shutdown func()) {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Store: st})
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	cl := client.New("http://" + addr)
	if err := cl.WaitReady(context.Background(), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	var once bool
	return st, "http://" + addr, func() {
		if once {
			return
		}
		once = true
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		st.Close()
	}
}

func TestWarmRestartServesByteIdenticalReports(t *testing.T) {
	dir := t.TempDir()
	source := readTestdata(t, "valve.py")
	fp := client.Fingerprint(source)
	checkBody := fmt.Sprintf(`{"source":%q}`, source)
	fpBody := fmt.Sprintf(`{"fingerprint":%q}`, fp)

	// First life: verify cold, let the drain flush the write-behind
	// queue to disk.
	_, base1, shutdown1 := bootStoreServer(t, dir, nil)
	code, body1 := rawPost(t, base1, "/v1/check", checkBody)
	if code != http.StatusOK {
		t.Fatalf("cold check: %d %s", code, body1)
	}
	shutdown1()

	// The crash left garbage behind: a torn half-frame in the object
	// directory, exactly what a kill -9 mid-write produces.
	torn := filepath.Join(dir, "objects", "feedfacedeadbeef.art")
	if err := os.WriteFile(torn, []byte("SHST\x01\x00garbage-half-frame"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: a fresh process over the same directory. The module
	// is NOT resident — only the fingerprint is sent — so a 200 here
	// can only come from the durable store.
	st2, base2, shutdown2 := bootStoreServer(t, dir, nil)
	defer shutdown2()
	if got := st2.Stats(); got.Entries == 0 || got.Corrupt == 0 {
		t.Fatalf("reopen stats %+v, want warm entries and the torn frame quarantined", got)
	}
	code, body2 := rawPost(t, base2, "/v1/check", fpBody)
	if code != http.StatusOK {
		t.Fatalf("warm fingerprint-only check: %d %s", code, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("warm restart body differs from cold body:\ncold: %s\nwarm: %s", body1, body2)
	}
	if st2.Stats().WarmHits == 0 {
		t.Fatal("warm check served without touching a warm store entry")
	}

	// The torn frame must be out of the object directory, not answering
	// reads.
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn frame still in objects/: %v", err)
	}
	quarantined, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(quarantined) == 0 {
		t.Fatalf("quarantine dir: %v entries, err %v", len(quarantined), err)
	}

	// And the metrics surface must say so.
	resp, err := http.Get(base2 + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if v, ok := client.ParseMetric(string(metrics), "shelleyd_store_warm_hits_total"); !ok || v == 0 {
		t.Fatalf("shelleyd_store_warm_hits_total = %v (present %v), want > 0", v, ok)
	}
	if v, ok := client.ParseMetric(string(metrics), "shelleyd_store_corrupt_total"); !ok || v == 0 {
		t.Fatalf("shelleyd_store_corrupt_total = %v (present %v), want > 0", v, ok)
	}
}

func TestStoreFaultInjectionAcceptance(t *testing.T) {
	dir := t.TempDir()
	ff := store.NewFaultFS(store.OSFS{}, 1)
	st, base, shutdown := bootStoreServer(t, dir, ff)
	defer shutdown()

	// Every filesystem operation fails from here on.
	ff.SetFaults(store.Faults{FailProb: 1})

	cl := client.New(base)
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		source := syntheticSource(2, fmt.Sprintf("Flt%d", i))
		resp, err := cl.Check(ctx, client.CheckRequest{Source: source})
		if err != nil {
			t.Fatalf("check %d under total store failure: %v", i, err)
		}
		if len(resp.Reports) == 0 {
			t.Fatalf("check %d returned no reports", i)
		}
	}

	// Drain the write-behind queue so every scheduled write has hit the
	// (failing) disk, then the books must balance exactly: one counted
	// store error per injected fault, no more, no less.
	if err := st.Flush(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	injected := ff.Injected()
	if injected == 0 {
		t.Fatal("fault FS injected nothing; the test exercised no store I/O")
	}
	if got := st.Stats().Errors; got != injected {
		t.Fatalf("store counted %d errors, FaultFS injected %d — accounting must match exactly", got, injected)
	}
	metrics, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := client.ParseMetric(metrics, "shelleyd_store_errors_total")
	if !ok || uint64(v) != ff.Injected() {
		t.Fatalf("shelleyd_store_errors_total = %v (present %v), want %d", v, ok, ff.Injected())
	}

	// Degradation is visible but not fatal: healthz stays 200.
	status, body := func() (int, string) {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(raw)
	}()
	if status != http.StatusOK || !strings.Contains(body, "store degraded") {
		t.Fatalf("healthz = %d %q, want 200 with a degraded note", status, body)
	}

	// Heal the disk: the same store serves durable hits again without a
	// restart.
	ff.SetFaults(store.Faults{})
	if _, err := cl.Check(ctx, client.CheckRequest{Source: syntheticSource(1, "Heal")}); err != nil {
		t.Fatalf("check after heal: %v", err)
	}
	if err := st.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if st.Len() == 0 {
		t.Fatal("no entries published after the disk healed")
	}
}

func TestShutdownDrainFlushesStoreQueue(t *testing.T) {
	dir := t.TempDir()
	_, base, shutdown := bootStoreServer(t, dir, nil)
	code, body := rawPost(t, base, "/v1/check", fmt.Sprintf(`{"source":%q}`, readTestdata(t, "valve.py")))
	if code != http.StatusOK {
		t.Fatalf("check: %d %s", code, body)
	}
	// SIGTERM path: Shutdown must flush whatever the write-behind queue
	// accepted before the process exits.
	shutdown()

	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() == 0 {
		t.Fatal("store empty after drain; the shutdown flush lost the queue")
	}
}

func TestSnapshotHTTPRoundTrip(t *testing.T) {
	ctx := context.Background()
	source := readTestdata(t, "valve.py")
	fp := client.Fingerprint(source)

	// Daemon A verifies and holds the artifacts.
	dirA := t.TempDir()
	_, baseA, shutdownA := bootStoreServer(t, dirA, nil)
	defer shutdownA()
	clA := client.New(baseA)
	if _, err := clA.Check(ctx, client.CheckRequest{Source: source}); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	n, err := clA.SnapshotDownload(ctx, &snap)
	if err != nil || n == 0 {
		t.Fatalf("snapshot download: %d bytes, %v", n, err)
	}

	// Daemon B never saw the source; the snapshot alone must let it
	// answer a fingerprint-only check.
	dirB := t.TempDir()
	_, baseB, shutdownB := bootStoreServer(t, dirB, nil)
	defer shutdownB()
	clB := client.New(baseB)
	imp, err := clB.SnapshotUpload(ctx, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatalf("snapshot upload: %v", err)
	}
	if imp.Imported == 0 {
		t.Fatalf("import response %+v, want imported entries", imp)
	}
	resp, err := clB.Check(ctx, client.CheckRequest{Fingerprint: fp})
	if err != nil {
		t.Fatalf("fingerprint-only check on snapshot-warmed daemon: %v", err)
	}
	if !resp.OK || len(resp.Reports) == 0 {
		t.Fatalf("unexpected warmed response: %+v", resp)
	}

	// Re-uploading the same snapshot is a clean no-op: everything is a
	// duplicate, nothing imports twice.
	imp2, err := clB.SnapshotUpload(ctx, bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if imp2.Imported != 0 || imp2.Skipped == 0 {
		t.Fatalf("duplicate upload imported=%d skipped=%d, want 0 imported", imp2.Imported, imp2.Skipped)
	}

	// A snapshot with a damaged record still imports the good ones; a
	// structurally broken stream is refused outright.
	if _, err := clB.SnapshotUpload(ctx, strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("structurally broken snapshot accepted")
	}
}

package server

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	shelley "github.com/shelley-go/shelley"
	"github.com/shelley-go/shelley/client"
	"github.com/shelley-go/shelley/internal/check"
)

// The watch subsystem is the daemon face of shelley.Session: named,
// long-lived incremental re-verification sessions for edit loops. An
// editor POSTs each save to /v1/watch; the daemon diffs it against the
// session's resident generation at method granularity, re-verifies only
// the classes the diff invalidates (the session's pipeline cache
// answers everything else), and publishes the round — full report set,
// diff, and reuse counters — both as the POST response and to every
// long-poller parked on GET /v1/watch. Off by default; the endpoints
// answer 404 without Config.Watch.

// watchSession is one named session: a shelley.Session plus the
// publish state its long-pollers wait on.
type watchSession struct {
	name string
	sess *shelley.Session

	// runMu serializes push rounds end to end (re-check, sequence
	// assignment, publish), so updates publish in re-check order.
	runMu sync.Mutex

	// pubMu guards the published state below. seq is the generation
	// counter (1 = first push); body the latest round's 200 bytes;
	// notify is closed and replaced on each publish; gone is closed
	// when the session is evicted.
	pubMu    sync.Mutex
	seq      uint64
	body     []byte
	notify   chan struct{}
	gone     chan struct{}
	lastUsed time.Time
}

// watchStore tracks the daemon's watch sessions, bounded by
// MaxWatchSessions with least-recently-used eviction (an evicted
// session's pollers wake with 404; its editor's next push recreates it
// cold).
type watchStore struct {
	mu       sync.Mutex
	max      int
	sessions map[string]*watchSession
	evicted  *atomic.Uint64
	live     *atomic.Int64
}

func newWatchStore(max int, evicted *atomic.Uint64, live *atomic.Int64) *watchStore {
	return &watchStore{
		max:      max,
		sessions: make(map[string]*watchSession),
		evicted:  evicted,
		live:     live,
	}
}

// get returns the named session, creating it (and evicting the
// least-recently-used one past the bound) when create is set.
func (st *watchStore) get(name string, create bool) *watchSession {
	st.mu.Lock()
	defer st.mu.Unlock()
	ws := st.sessions[name]
	if ws != nil || !create {
		if ws != nil {
			ws.touch()
		}
		return ws
	}
	if len(st.sessions) >= st.max {
		var oldest *watchSession
		for _, cand := range st.sessions {
			if oldest == nil || cand.lastUsedLocked().Before(oldest.lastUsedLocked()) {
				oldest = cand
			}
		}
		delete(st.sessions, oldest.name)
		close(oldest.gone)
		st.evicted.Add(1)
		st.live.Add(-1)
	}
	ws = &watchSession{
		name:     name,
		sess:     shelley.NewSession(),
		notify:   make(chan struct{}),
		gone:     make(chan struct{}),
		lastUsed: time.Now(),
	}
	st.sessions[name] = ws
	st.live.Add(1)
	return ws
}

func (ws *watchSession) touch() {
	ws.pubMu.Lock()
	ws.lastUsed = time.Now()
	ws.pubMu.Unlock()
}

func (ws *watchSession) lastUsedLocked() time.Time {
	ws.pubMu.Lock()
	defer ws.pubMu.Unlock()
	return ws.lastUsed
}

// publish assigns the round its sequence number, stores the rendered
// body, and wakes every parked long-poller.
func (ws *watchSession) publish(render func(seq uint64) []byte) {
	ws.pubMu.Lock()
	defer ws.pubMu.Unlock()
	ws.seq++
	ws.body = render(ws.seq)
	ws.lastUsed = time.Now()
	close(ws.notify)
	ws.notify = make(chan struct{})
}

// snapshot returns the published state a poller decides on.
func (ws *watchSession) snapshot() (seq uint64, body []byte, notify <-chan struct{}) {
	ws.pubMu.Lock()
	defer ws.pubMu.Unlock()
	return ws.seq, ws.body, ws.notify
}

// wireDiff converts a session diff to its wire form.
func wireDiff(d shelley.Diff) client.WatchDiff {
	out := client.WatchDiff{
		Initial:         d.Initial,
		Added:           d.Added,
		Removed:         d.Removed,
		Changed:         d.Changed,
		Unchanged:       d.Unchanged,
		ProtocolChanged: d.ProtocolChanged,
		Invalidated:     d.Invalidated,
	}
	for name, md := range d.Methods {
		edited := append(append([]string(nil), md.Changed...), md.Added...)
		if len(edited) == 0 {
			continue
		}
		if out.ChangedMethods == nil {
			out.ChangedMethods = make(map[string][]string, len(d.Methods))
		}
		out.ChangedMethods[name] = edited
	}
	return out
}

// handleWatchPost runs one push round through the worker pool. The
// launch key is unique per push — watch rounds mutate session state, so
// coalescing two pushes into one execution would silently drop a
// generation.
func (s *Server) handleWatchPost(w http.ResponseWriter, r *http.Request) int {
	if s.watch == nil {
		return s.writeError(w, http.StatusNotFound, "watch mode disabled; start shelleyd with -watch")
	}
	var req client.WatchRequest
	if err := decodeBody(w, r, s.cfg.MaxSourceBytes, &req); err != nil {
		return s.writeError(w, http.StatusBadRequest, err.Error())
	}
	if req.Session == "" {
		return s.writeError(w, http.StatusBadRequest, "watch needs a session name")
	}
	if req.Source == "" {
		return s.writeError(w, http.StatusBadRequest, "watch needs source (there is no fingerprint-only form)")
	}
	ws := s.watch.get(req.Session, true)
	key := "watch\x00" + req.Session + "\x00" + strconv.FormatUint(s.watchKeySeq.Add(1), 10)
	return s.execute(w, r, key, s.watchFn(ws, req))
}

// watchFn is the pooled body of one push round: incremental re-check,
// publish, respond.
func (s *Server) watchFn(ws *watchSession, req client.WatchRequest) func(ctx context.Context) (int, []byte) {
	return func(ctx context.Context) (int, []byte) {
		ws.runMu.Lock()
		defer ws.runMu.Unlock()
		var opts []check.Option
		if req.Precise {
			opts = append(opts, check.Precise())
		}
		res, err := ws.sess.Recheck(ctx, req.Session, []byte(req.Source), opts...)
		if err != nil {
			return s.checkErrorBody(ctx, err)
		}
		ok := true
		for _, rep := range res.Reports {
			ok = ok && rep.OK()
		}
		upd := client.WatchUpdate{
			Session:        req.Session,
			Fingerprint:    client.Fingerprint(req.Source),
			OK:             ok,
			Reports:        res.Reports,
			Diff:           wireDiff(res.Diff),
			ReusedReports:  res.ReusedReports,
			CheckedClasses: res.CheckedClasses,
			ElapsedMicros:  res.Elapsed.Microseconds(),
		}
		var status int
		var body []byte
		ws.publish(func(seq uint64) []byte {
			upd.Seq = seq
			status, body = jsonBody(upd)
			return body
		})
		s.met.watchUpdates.Add(1)
		s.met.incrementalReused.Add(uint64(res.ReusedReports))
		s.met.incrementalChecked.Add(uint64(res.CheckedClasses))
		return status, body
	}
}

// handleWatchGet is the long-poll half: block until the session
// publishes a round with Seq > after, the poll window lapses (204), the
// daemon drains (503), or the session is evicted (404). A poller behind
// several generations gets only the latest — watch is a level trigger,
// not a queue.
func (s *Server) handleWatchGet(w http.ResponseWriter, r *http.Request) int {
	if s.watch == nil {
		return s.writeError(w, http.StatusNotFound, "watch mode disabled; start shelleyd with -watch")
	}
	name := r.URL.Query().Get("session")
	if name == "" {
		return s.writeError(w, http.StatusBadRequest, "watch poll needs ?session=")
	}
	after, err := strconv.ParseUint(r.URL.Query().Get("after"), 10, 64)
	if err != nil && r.URL.Query().Get("after") != "" {
		return s.writeError(w, http.StatusBadRequest, "bad ?after= (want a sequence number)")
	}
	ws := s.watch.get(name, false)
	if ws == nil {
		return s.writeError(w, http.StatusNotFound, "watch session "+name+" not found; POST /v1/watch creates it")
	}
	timer := time.NewTimer(s.cfg.WatchPollTimeout)
	defer timer.Stop()
	for {
		seq, body, notify := ws.snapshot()
		if seq > after {
			s.met.watchPushes.Add(1)
			return s.writeRaw(w, http.StatusOK, body)
		}
		select {
		case <-notify:
		case <-ws.gone:
			return s.writeError(w, http.StatusNotFound, "watch session "+name+" evicted; POST /v1/watch recreates it")
		case <-timer.C:
			w.WriteHeader(http.StatusNoContent)
			return http.StatusNoContent
		case <-s.watchStop:
			return s.writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		case <-r.Context().Done():
			s.met.timeoutWait.Add(1)
			return s.writeError(w, http.StatusGatewayTimeout, "request context ended: "+r.Context().Err().Error())
		}
	}
}

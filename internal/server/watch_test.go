package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/shelley-go/shelley/client"
)

// watchSource builds a two-class module whose composite body is
// parameterized, so tests can produce a one-method edit.
func watchSource(callOp string) string {
	return fmt.Sprintf(`@sys
class Dev:
    @op_initial_final
    def op0(self):
        return ["op0", "op1"]

    @op_initial_final
    def op1(self):
        return []

@sys(["d"])
class Ctl:
    def __init__(self):
        self.d = Dev()

    @op_initial_final
    def go(self):
        self.d.%s()
        return []
`, callOp)
}

// TestWatchDisabledAnswers404 pins the off-by-default contract.
func TestWatchDisabledAnswers404(t *testing.T) {
	t.Parallel()
	_, cl := startServer(t, Config{Workers: 2})
	ctx := context.Background()
	_, err := cl.WatchPush(ctx, client.WatchRequest{Session: "s", Source: watchSource("op0")})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("push on watchless daemon: %v, want 404", err)
	}
	if _, err := cl.Watch(ctx, "s", 0); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("poll on watchless daemon: %v, want 404", err)
	}
}

// TestWatchEditLoop is the end-to-end edit loop: push, long-poll, edit,
// and verify the incremental accounting — the second round re-verifies
// only the edited class and reuses the other's report.
func TestWatchEditLoop(t *testing.T) {
	t.Parallel()
	_, cl := startServer(t, Config{Workers: 2, Watch: true})
	ctx := context.Background()

	first, err := cl.WatchPush(ctx, client.WatchRequest{Session: "edit", Source: watchSource("op0")})
	if err != nil {
		t.Fatal(err)
	}
	if first.Seq != 1 || !first.Diff.Initial || first.CheckedClasses != 2 || first.ReusedReports != 0 {
		t.Fatalf("first round = seq %d initial %v checked %d reused %d",
			first.Seq, first.Diff.Initial, first.CheckedClasses, first.ReusedReports)
	}
	if !first.OK || len(first.Reports) != 2 {
		t.Fatalf("first round not clean: ok=%v reports=%d", first.OK, len(first.Reports))
	}

	// Park a long-poller past the first round, then push a one-method
	// edit of Ctl (the call target moves; Dev is untouched).
	type pollResult struct {
		upd *client.WatchUpdate
		err error
	}
	pollDone := make(chan pollResult, 1)
	go func() {
		upd, err := cl.Watch(ctx, "edit", first.Seq)
		pollDone <- pollResult{upd, err}
	}()
	// The poller must be parked (not answered) before the push, or the
	// test only exercises the fast path.
	time.Sleep(20 * time.Millisecond)

	second, err := cl.WatchPush(ctx, client.WatchRequest{Session: "edit", Source: watchSource("op1")})
	if err != nil {
		t.Fatal(err)
	}
	if second.Seq != 2 {
		t.Fatalf("second round seq = %d, want 2", second.Seq)
	}
	if got := fmt.Sprint(second.Diff.Changed); got != "[Ctl]" {
		t.Fatalf("second round changed = %v, want [Ctl]", second.Diff.Changed)
	}
	if len(second.Diff.ProtocolChanged) != 0 {
		t.Fatalf("body-only edit reported protocol change: %v", second.Diff.ProtocolChanged)
	}
	if second.CheckedClasses != 1 || second.ReusedReports != 1 {
		t.Fatalf("second round checked %d reused %d, want 1/1", second.CheckedClasses, second.ReusedReports)
	}
	if got := second.Diff.ChangedMethods["Ctl"]; fmt.Sprint(got) != "[go]" {
		t.Fatalf("changed methods = %v, want [go]", second.Diff.ChangedMethods)
	}

	res := <-pollDone
	if res.err != nil {
		t.Fatalf("long-poll: %v", res.err)
	}
	if res.upd == nil || res.upd.Seq != 2 {
		t.Fatalf("long-poll delivered %+v, want seq 2", res.upd)
	}
	if res.upd.Fingerprint != second.Fingerprint {
		t.Fatal("long-poll body differs from push response")
	}

	// The push response is byte-equivalent to a cold /v1/check of the
	// same source (report-wise).
	cold, err := cl.Check(ctx, client.CheckRequest{Source: watchSource("op1")})
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold.Reports {
		if cold.Reports[i].String() != second.Reports[i].String() {
			t.Fatalf("report %d: incremental differs from cold check", i)
		}
	}

	// Incremental counters reached the exposition.
	if v, ok, err := cl.MetricValue(ctx, "shelleyd_incremental_reports_reused_total"); err != nil || !ok || v != 1 {
		t.Fatalf("incremental reuse counter = %v ok=%v err=%v, want 1", v, ok, err)
	}
	if v, ok, err := cl.MetricValue(ctx, "shelleyd_watch_updates_total"); err != nil || !ok || v != 2 {
		t.Fatalf("watch updates counter = %v ok=%v err=%v, want 2", v, ok, err)
	}
	if v, ok, err := cl.MetricValue(ctx, "shelleyd_watch_sessions"); err != nil || !ok || v != 1 {
		t.Fatalf("watch sessions gauge = %v ok=%v err=%v, want 1", v, ok, err)
	}
}

// TestWatchPollWindowAndErrors pins the poll edge cases: an unknown
// session 404s, a lapsed window answers 204 (nil update), and a bad
// source leaves the previous generation resident.
func TestWatchPollWindowAndErrors(t *testing.T) {
	t.Parallel()
	_, cl := startServer(t, Config{Workers: 2, Watch: true, WatchPollTimeout: 50 * time.Millisecond})
	ctx := context.Background()

	var apiErr *client.APIError
	if _, err := cl.Watch(ctx, "ghost", 0); !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
		t.Fatalf("poll of unknown session: %v, want 404", err)
	}

	if _, err := cl.WatchPush(ctx, client.WatchRequest{Session: "s", Source: watchSource("op0")}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	upd, err := cl.Watch(ctx, "s", 1)
	if err != nil || upd != nil {
		t.Fatalf("lapsed poll = %+v, %v; want nil, nil", upd, err)
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Fatal("poll answered before the window lapsed")
	}

	// A broken push is a 422 and does not advance the session.
	_, err = cl.WatchPush(ctx, client.WatchRequest{Session: "s", Source: "class {"})
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("broken push: %v, want 422", err)
	}
	if upd, err := cl.Watch(ctx, "s", 0); err != nil || upd == nil || upd.Seq != 1 {
		t.Fatalf("session after broken push = %+v, %v; want seq 1", upd, err)
	}
}

// TestWatchEviction pins the session bound: creating past
// MaxWatchSessions evicts the least-recently-used session and wakes its
// pollers with 404.
func TestWatchEviction(t *testing.T) {
	t.Parallel()
	_, cl := startServer(t, Config{Workers: 2, Watch: true, MaxWatchSessions: 2})
	ctx := context.Background()

	for _, name := range []string{"a", "b"} {
		if _, err := cl.WatchPush(ctx, client.WatchRequest{Session: name, Source: watchSource("op0")}); err != nil {
			t.Fatal(err)
		}
	}
	pollDone := make(chan error, 1)
	go func() {
		_, err := cl.Watch(ctx, "a", 1)
		pollDone <- err
	}()
	time.Sleep(20 * time.Millisecond)
	// Touch "a" is NOT done here: "a" is oldest only if "b" was used
	// later, so refresh "b" then create "c".
	if _, err := cl.Watch(ctx, "b", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.WatchPush(ctx, client.WatchRequest{Session: "c", Source: watchSource("op0")}); err != nil {
		t.Fatal(err)
	}
	var apiErr *client.APIError
	select {
	case err := <-pollDone:
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound {
			t.Fatalf("evicted session's poller got %v, want 404", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("evicted session's poller never woke")
	}
	if v, ok, err := cl.MetricValue(ctx, "shelleyd_watch_sessions_evicted_total"); err != nil || !ok || v != 1 {
		t.Fatalf("eviction counter = %v ok=%v err=%v, want 1", v, ok, err)
	}
}

// TestWatchDrainReleasesPollers pins the shutdown interaction: a parked
// long-poller answers 503 as soon as the drain begins instead of
// stalling it for a poll window.
func TestWatchDrainReleasesPollers(t *testing.T) {
	t.Parallel()
	srv, cl := startServer(t, Config{Workers: 2, Watch: true, WatchPollTimeout: time.Minute})
	ctx := context.Background()
	if _, err := cl.WatchPush(ctx, client.WatchRequest{Session: "s", Source: watchSource("op0")}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.Watch(ctx, "s", 1)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("drain stalled %s on parked pollers", elapsed)
	}
	wg.Wait()
	for i, err := range errs {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("poller %d woke with %v, want 503 draining", i, err)
		}
		if !strings.Contains(apiErr.Message, "draining") {
			t.Fatalf("poller %d message %q lacks draining", i, apiErr.Message)
		}
	}
}

// Package store implements the disk-backed, content-addressed artifact
// store that lets a restarted shelleyd boot warm: serialized class
// reports and rendered response bodies, keyed by the same
// fingerprint+budget keys as the in-memory pipeline cache, survive the
// process.
//
// Durability is defensive end to end. Every entry is a self-describing
// blob — magic, format version, lengths, key, payload, and a sha256
// trailer over everything before it — written to a temp file, fsynced,
// and atomically renamed into place, so a crash at any instant leaves
// either the previous state or the complete new entry, never a torn
// one that parses. Reads verify the whole frame; anything corrupt,
// truncated, or from an unknown format version is quarantined and
// counted, never served and never fatal. All I/O goes through the FS
// interface so the failure handling is exercised by FaultFS in tests
// instead of trusted.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Entry frame layout (all integers little-endian):
//
//	offset  size  field
//	0       4     magic "SHST"
//	4       2     format version (currently 1)
//	6       4     key length K
//	10      8     payload length P
//	18      K     key bytes
//	18+K    P     payload bytes
//	18+K+P  32    sha256 over bytes [0, 18+K+P)
const (
	entryMagic   = "SHST"
	entryVersion = 1
	headerSize   = 4 + 2 + 4 + 8
	trailerSize  = sha256.Size

	// maxKeyLen and maxPayloadLen bound what Decode will even attempt
	// to allocate: a corrupt length field must fail fast, not drive a
	// multi-gigabyte allocation.
	maxKeyLen     = 1 << 16
	maxPayloadLen = 1 << 31
)

// ErrCorrupt is wrapped by every Decode failure caused by a damaged
// frame (truncation, bad magic, implausible lengths, checksum
// mismatch). Callers quarantine-and-count on it instead of failing.
var ErrCorrupt = errors.New("store: corrupt entry")

// ErrVersion is wrapped when the frame is well-formed but written by an
// unknown (newer or retired) format version. Such entries are skipped
// like corrupt ones — a downgraded daemon must never misparse a future
// format — but counted under the same corruption metric with a
// distinguishable error.
var ErrVersion = errors.New("store: unsupported entry version")

// EncodedSize returns the on-disk size of an entry for a key/payload
// pair, used for eviction accounting before the write happens.
func EncodedSize(key string, payload []byte) int64 {
	return int64(headerSize + len(key) + len(payload) + trailerSize)
}

// Encode frames a key/payload pair as one self-verifying entry blob.
func Encode(key string, payload []byte) []byte {
	buf := make([]byte, headerSize+len(key)+len(payload)+trailerSize)
	copy(buf, entryMagic)
	binary.LittleEndian.PutUint16(buf[4:], entryVersion)
	binary.LittleEndian.PutUint32(buf[6:], uint32(len(key)))
	binary.LittleEndian.PutUint64(buf[10:], uint64(len(payload)))
	copy(buf[headerSize:], key)
	copy(buf[headerSize+len(key):], payload)
	sum := sha256.Sum256(buf[: headerSize+len(key)+len(payload) : headerSize+len(key)+len(payload)])
	copy(buf[headerSize+len(key)+len(payload):], sum[:])
	return buf
}

// Decode verifies and unpacks one entry blob. Any damage — truncation,
// wrong magic, implausible lengths, trailing garbage, checksum
// mismatch — returns an error wrapping ErrCorrupt; a well-formed frame
// from an unknown format version returns one wrapping ErrVersion. The
// returned payload aliases b.
func Decode(b []byte) (key string, payload []byte, err error) {
	if len(b) < headerSize+trailerSize {
		return "", nil, fmt.Errorf("%w: %d bytes is shorter than an empty entry", ErrCorrupt, len(b))
	}
	if string(b[:4]) != entryMagic {
		return "", nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != entryVersion {
		return "", nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrVersion, v, entryVersion)
	}
	keyLen := int64(binary.LittleEndian.Uint32(b[6:]))
	payloadLen := int64(binary.LittleEndian.Uint64(b[10:]))
	if keyLen > maxKeyLen || payloadLen > maxPayloadLen {
		return "", nil, fmt.Errorf("%w: implausible lengths key=%d payload=%d", ErrCorrupt, keyLen, payloadLen)
	}
	total := int64(headerSize) + keyLen + payloadLen + trailerSize
	if int64(len(b)) != total {
		return "", nil, fmt.Errorf("%w: %d bytes, frame declares %d", ErrCorrupt, len(b), total)
	}
	body := b[: headerSize+keyLen+payloadLen : headerSize+keyLen+payloadLen]
	sum := sha256.Sum256(body)
	if string(sum[:]) != string(b[headerSize+keyLen+payloadLen:]) {
		return "", nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return string(b[headerSize : headerSize+keyLen]), b[headerSize+keyLen : headerSize+keyLen+payloadLen], nil
}

package store

import (
	"bytes"
	"errors"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		key     string
		payload string
	}{
		{"k", "v"},
		{"", ""},
		{"check\x00sha256:abc\x00Class\x00true", `{"ok":true}`},
		{string(bytes.Repeat([]byte{0xff}, 300)), string(bytes.Repeat([]byte("payload"), 1000))},
	}
	for _, c := range cases {
		blob := Encode(c.key, []byte(c.payload))
		if got := EncodedSize(c.key, []byte(c.payload)); got != int64(len(blob)) {
			t.Errorf("EncodedSize = %d, len(Encode) = %d", got, len(blob))
		}
		key, payload, err := Decode(blob)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if key != c.key || string(payload) != c.payload {
			t.Errorf("round trip mismatch: key %q payload %q", key, payload)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	blob := Encode("some/key", []byte("some payload worth protecting"))
	check := func(name string, b []byte, want error) {
		t.Helper()
		if _, _, err := Decode(b); !errors.Is(err, want) {
			t.Errorf("%s: err = %v, want %v", name, err, want)
		}
	}
	check("empty", nil, ErrCorrupt)
	check("truncated header", blob[:10], ErrCorrupt)
	check("truncated payload", blob[:len(blob)-trailerSize-3], ErrCorrupt)
	check("truncated trailer", blob[:len(blob)-1], ErrCorrupt)
	check("trailing garbage", append(append([]byte{}, blob...), 0x00), ErrCorrupt)

	magic := append([]byte{}, blob...)
	magic[0] = 'X'
	check("bad magic", magic, ErrCorrupt)

	future := append([]byte{}, blob...)
	future[4], future[5] = 0xee, 0xff
	check("future version", future, ErrVersion)

	flipped := append([]byte{}, blob...)
	flipped[headerSize+10] ^= 0x40 // a payload byte
	check("bit flip", flipped, ErrCorrupt)

	badsum := append([]byte{}, blob...)
	badsum[len(badsum)-1] ^= 0x01
	check("bad checksum", badsum, ErrCorrupt)

	badlen := append([]byte{}, blob...)
	badlen[6] = 0xff // key length no longer matches the frame
	check("bad key length", badlen, ErrCorrupt)

	huge := append([]byte{}, blob...)
	huge[10], huge[11], huge[12], huge[13] = 0xff, 0xff, 0xff, 0xff
	huge[14], huge[15], huge[16], huge[17] = 0xff, 0xff, 0xff, 0x7f
	check("implausible payload length", huge, ErrCorrupt)
}

// FuzzStoreDecode asserts the frame decoder never panics or
// misattributes hostile bytes, and that accepted frames re-encode to
// the identical blob — corruption can only ever surface as a counted,
// quarantined skip.
func FuzzStoreDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Encode("k", []byte("v")))
	f.Add(Encode("", nil))
	f.Add(Encode("check\x00fp\x00C\x00false", []byte(`{"ok":true,"reports":[]}`)))
	trunc := Encode("trunc", []byte("payload"))
	f.Add(trunc[:len(trunc)-5])
	future := Encode("future", []byte("payload"))
	future[4] = 0x63
	f.Add(future)
	f.Fuzz(func(t *testing.T, b []byte) {
		key, payload, err := Decode(b)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrVersion) {
				t.Fatalf("Decode error outside the corrupt/version taxonomy: %v", err)
			}
			return
		}
		if !bytes.Equal(Encode(key, payload), b) {
			t.Fatalf("accepted frame does not re-encode identically (key %q, %d payload bytes)", key, len(payload))
		}
	})
}

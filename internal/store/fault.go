package store

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the error FaultFS returns for a probabilistically
// injected fault; ErrNoSpace simulates ENOSPC once the byte budget is
// spent. Both are ordinary errors to the store — it must count them
// and degrade, never special-case them.
var (
	ErrInjected = errors.New("store: injected fault")
	ErrNoSpace  = errors.New("store: no space left on device (injected)")
)

// Faults configures FaultFS's misbehavior. The zero value injects
// nothing.
type Faults struct {
	// FailProb is the probability, per FS call, of failing with
	// ErrInjected instead of running the operation.
	FailProb float64

	// TornWriteProb is the probability that a WriteFile silently
	// persists only a prefix of the data and reports success — the
	// lying-hardware case the checksum trailer exists for.
	TornWriteProb float64

	// WriteBudget, when positive, is the number of bytes WriteFile may
	// persist in total before every further write fails with ErrNoSpace.
	WriteBudget int64

	// Latency is added to every FS call.
	Latency time.Duration
}

// FaultFS wraps an inner FS with configurable fault injection. It is
// the test harness behind the store's recovery guarantees: arm it with
// a Faults profile and every claimed degradation path actually runs.
// Construct with NewFaultFS; arm and rearm with SetFaults (an unarmed
// FaultFS is transparent, so Open can build a healthy store before the
// test turns the disk hostile).
type FaultFS struct {
	inner FS

	mu      sync.Mutex
	rng     *rand.Rand
	faults  Faults
	written int64

	injected atomic.Uint64
	torn     atomic.Uint64
}

// NewFaultFS wraps inner (nil means the real filesystem) with an
// unarmed fault injector seeded deterministically.
func NewFaultFS(inner FS, seed int64) *FaultFS {
	if inner == nil {
		inner = OSFS{}
	}
	return &FaultFS{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetFaults installs (or clears, with the zero value) the fault
// profile. The ENOSPC byte budget restarts from zero.
func (f *FaultFS) SetFaults(faults Faults) {
	f.mu.Lock()
	f.faults = faults
	f.written = 0
	f.mu.Unlock()
}

// Injected returns the number of calls that failed with an injected
// error (ErrInjected and ErrNoSpace; torn writes report success and are
// counted separately by Torn). The store's errors metric must account
// for every one of these.
func (f *FaultFS) Injected() uint64 { return f.injected.Load() }

// Torn returns the number of writes that silently persisted a prefix.
func (f *FaultFS) Torn() uint64 { return f.torn.Load() }

// trip decides one call's fate under the current profile, applying
// latency and counting any injected failure.
func (f *FaultFS) trip() error {
	f.mu.Lock()
	latency := f.faults.Latency
	fail := f.faults.FailProb > 0 && f.rng.Float64() < f.faults.FailProb
	f.mu.Unlock()
	if latency > 0 {
		time.Sleep(latency)
	}
	if fail {
		f.injected.Add(1)
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.trip(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.trip(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err := f.trip(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) WriteFile(path string, data []byte) error {
	if err := f.trip(); err != nil {
		return err
	}
	f.mu.Lock()
	if b := f.faults.WriteBudget; b > 0 && f.written+int64(len(data)) > b {
		f.mu.Unlock()
		f.injected.Add(1)
		return ErrNoSpace
	}
	f.written += int64(len(data))
	tear := f.faults.TornWriteProb > 0 && f.rng.Float64() < f.faults.TornWriteProb
	f.mu.Unlock()
	if tear && len(data) > 0 {
		f.torn.Add(1)
		// Persist a prefix and lie about it: the rename will publish a
		// frame whose checksum cannot verify, which is exactly the
		// damage the read path must quarantine.
		return f.inner.WriteFile(path, data[:len(data)/2])
	}
	return f.inner.WriteFile(path, data)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err := f.trip(); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if err := f.trip(); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) Stat(path string) (int64, time.Time, error) {
	if err := f.trip(); err != nil {
		return 0, time.Time{}, err
	}
	return f.inner.Stat(path)
}

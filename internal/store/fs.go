package store

import (
	"os"
	"path/filepath"
	"sort"
	"time"
)

// FS is the narrow filesystem surface the store performs all its I/O
// through. Production uses OSFS; tests inject FaultFS to prove that
// every failure mode — error returns, torn writes, latency, ENOSPC —
// degrades to recompute-and-serve instead of failing requests.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error

	// ReadDir lists the file names (not subdirectories) in dir, sorted.
	ReadDir(dir string) ([]string, error)

	// ReadFile returns the full content of path.
	ReadFile(path string) ([]byte, error)

	// WriteFile creates (or truncates) path with data and syncs it to
	// stable storage before returning — the "write to temp, fsync" half
	// of the store's atomic-publish protocol.
	WriteFile(path string, data []byte) error

	// Rename atomically replaces newpath with oldpath — the "atomic
	// rename" half of the publish protocol.
	Rename(oldpath, newpath string) error

	// Remove deletes path.
	Remove(path string) error

	// Stat returns the size and modification time of path.
	Stat(path string) (size int64, mtime time.Time, err error)
}

// OSFS is the production FS backed by the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (OSFS) WriteFile(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	// The sync is what makes the later rename a commit point: without
	// it a crash can publish a name whose bytes never reached the disk.
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) Stat(path string) (int64, time.Time, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, time.Time{}, err
	}
	return fi.Size(), fi.ModTime(), nil
}

// join builds FS paths with the platform separator; kept here so Store
// never imports path/filepath directly in its logic.
func join(elem ...string) string { return filepath.Join(elem...) }

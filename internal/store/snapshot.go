package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
)

// Snapshot stream layout: a 6-byte header (magic "SHSN" + u16 version,
// little-endian) followed by zero or more records, each a u64
// little-endian length and one entry frame (the same self-verifying
// Encode format as the on-disk files, checksum included). Entries
// carry their own integrity, so an import trusts nothing: every record
// is re-verified and a damaged one is skipped and counted.
const (
	snapshotMagic   = "SHSN"
	snapshotVersion = 1
)

// ErrSnapshot is wrapped by structural snapshot-stream failures (bad
// header, impossible record length, truncated framing). Unlike a bad
// entry — which is skipped — a broken stream aborts the import, since
// record boundaries can no longer be trusted.
var ErrSnapshot = errors.New("store: invalid snapshot stream")

// WriteSnapshot streams every verified entry to w — the export half of
// instance pre-warming. Entries that fail verification on the way out
// are quarantined and skipped, exactly like a failed Get.
func (s *Store) WriteSnapshot(w io.Writer) error {
	var header [6]byte
	copy(header[:], snapshotMagic)
	binary.LittleEndian.PutUint16(header[4:], snapshotVersion)
	if _, err := w.Write(header[:]); err != nil {
		return err
	}
	s.mu.Lock()
	type ref struct{ key, name string }
	refs := make([]ref, 0, len(s.index))
	for k, m := range s.index {
		refs = append(refs, ref{key: k, name: m.name})
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].key < refs[j].key })

	var lenBuf [8]byte
	for _, r := range refs {
		raw, err := s.fs.ReadFile(join(s.objDir, r.name))
		if err != nil {
			s.errors.Add(1)
			continue
		}
		if gotKey, _, err := Decode(raw); err != nil || gotKey != r.key {
			s.corrupt.Add(1)
			s.mu.Lock()
			if cur, ok := s.index[r.key]; ok && cur.name == r.name {
				delete(s.index, r.key)
				s.totalBytes -= cur.size
			}
			s.mu.Unlock()
			s.quarantine(r.name)
			continue
		}
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(raw)))
		if _, err := w.Write(lenBuf[:]); err != nil {
			return err
		}
		if _, err := w.Write(raw); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot imports a snapshot stream, writing each new verified
// entry synchronously (the importer wants durability when the call
// returns, unlike the serving hot path). Damaged or duplicate entries
// are skipped and counted; a structurally broken stream aborts with an
// error wrapping ErrSnapshot. Imported entries count as warm — they
// predate this process's own work.
func (s *Store) ReadSnapshot(r io.Reader) (imported, skipped int, err error) {
	var header [6]byte
	if _, err := io.ReadFull(r, header[:]); err != nil {
		return 0, 0, fmt.Errorf("%w: reading header: %v", ErrSnapshot, err)
	}
	if string(header[:4]) != snapshotMagic {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrSnapshot, header[:4])
	}
	if v := binary.LittleEndian.Uint16(header[4:]); v != snapshotVersion {
		return 0, 0, fmt.Errorf("%w: version %d (this build reads %d)", ErrSnapshot, v, snapshotVersion)
	}
	var lenBuf [8]byte
	for {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return imported, skipped, nil
			}
			return imported, skipped, fmt.Errorf("%w: reading record length: %v", ErrSnapshot, err)
		}
		n := binary.LittleEndian.Uint64(lenBuf[:])
		if n > uint64(headerSize+maxKeyLen+maxPayloadLen+trailerSize) {
			return imported, skipped, fmt.Errorf("%w: implausible record length %d", ErrSnapshot, n)
		}
		blob := make([]byte, n)
		if _, err := io.ReadFull(r, blob); err != nil {
			return imported, skipped, fmt.Errorf("%w: truncated record: %v", ErrSnapshot, err)
		}
		key, payload, derr := Decode(blob)
		if derr != nil {
			s.corrupt.Add(1)
			s.importSkipped.Add(1)
			skipped++
			continue
		}
		s.mu.Lock()
		_, dup := s.index[key]
		closed := s.closed
		s.mu.Unlock()
		if dup || closed {
			s.importSkipped.Add(1)
			skipped++
			continue
		}
		if s.write(key, payload, true) {
			s.imported.Add(1)
			imported++
		} else {
			s.importSkipped.Add(1)
			skipped++
		}
	}
}

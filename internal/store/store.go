package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes a Store. Dir is required; everything else has a usable
// default.
type Config struct {
	// Dir is the store root. Three subdirectories are managed under it:
	// objects/ (published entries), tmp/ (in-flight writes, cleaned at
	// every Open), quarantine/ (entries that failed verification, kept
	// for post-mortem instead of deleted).
	Dir string

	// MaxBytes bounds the published entries' total size; the least
	// recently used entries are evicted to respect it. 0 = unbounded.
	MaxBytes int64

	// QueueDepth bounds the write-behind queue. The hot path never
	// blocks on disk: a full queue sheds the write (counted) and the
	// artifact simply stays memory-only. 0 means 256.
	QueueDepth int

	// FS is the filesystem implementation; nil means the real one.
	FS FS
}

// entryMeta is the in-memory index record of one published entry.
type entryMeta struct {
	name     string // file name under objects/
	size     int64  // on-disk frame size
	lastUsed int64  // logical access clock, drives LRU eviction
	warm     bool   // loaded at Open or imported — predates this process's work
}

// writeReq is one unit of write-behind work; a non-nil flush is a
// barrier request instead (closed when the writer reaches it).
type writeReq struct {
	key     string
	payload []byte
	flush   chan struct{}
}

// Store is a crash-safe, content-addressed artifact store. Get/Put are
// safe for concurrent use; Put is asynchronous (write-behind through a
// bounded queue) so callers on the serving hot path never wait on
// disk. Every failure — I/O errors, corrupt entries, a full queue — is
// counted and degrades to a cache miss; no store condition is ever an
// error for the caller.
type Store struct {
	fs                           FS
	dir, objDir, tmpDir, quarDir string
	maxBytes                     int64

	mu         sync.Mutex
	index      map[string]*entryMeta
	pending    map[string]struct{} // keys queued but not yet published
	totalBytes int64
	clock      int64
	closed     bool

	queue      chan writeReq
	writerDone chan struct{}
	tmpSeq     atomic.Uint64

	hits          atomic.Uint64
	warmHits      atomic.Uint64
	misses        atomic.Uint64
	writes        atomic.Uint64
	errors        atomic.Uint64
	corrupt       atomic.Uint64
	shed          atomic.Uint64
	evictions     atomic.Uint64
	imported      atomic.Uint64
	importSkipped atomic.Uint64
}

// Stats is a point-in-time snapshot of the store's counters; the
// daemon renders it as the shelleyd_store_* metric family.
type Stats struct {
	// Entries and Bytes describe the published index.
	Entries int
	Bytes   int64

	// Hits counts Gets served from disk; WarmHits the subset served
	// from entries that predate this process (warm-boot reuse, the
	// whole point of the store). Misses counts everything else,
	// including reads degraded by I/O errors or corruption.
	Hits, WarmHits, Misses uint64

	// Writes counts entries published; Shed write-behind requests
	// dropped on a full queue; Evictions entries removed for MaxBytes.
	Writes, Shed, Evictions uint64

	// Errors counts failed filesystem operations (one per failed call);
	// Corrupt counts entries that failed frame verification and were
	// quarantined. Either kind degrades to recompute-and-serve.
	Errors, Corrupt uint64

	// Imported/ImportSkipped count snapshot-import outcomes.
	Imported, ImportSkipped uint64
}

// Open builds (or reopens) the store rooted at cfg.Dir: leftover
// in-flight temp files from a previous crash are discarded, every
// published entry is read back and verified — corrupt, truncated, or
// future-versioned entries are quarantined and counted — and the
// survivors become the warm index, LRU-ordered by file mtime.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: Config.Dir is required")
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = OSFS{}
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 256
	}
	s := &Store{
		fs:         fsys,
		dir:        cfg.Dir,
		objDir:     join(cfg.Dir, "objects"),
		tmpDir:     join(cfg.Dir, "tmp"),
		quarDir:    join(cfg.Dir, "quarantine"),
		maxBytes:   cfg.MaxBytes,
		index:      make(map[string]*entryMeta),
		pending:    make(map[string]struct{}),
		queue:      make(chan writeReq, depth),
		writerDone: make(chan struct{}),
	}
	for _, d := range []string{s.objDir, s.tmpDir, s.quarDir} {
		if err := fsys.MkdirAll(d); err != nil {
			return nil, fmt.Errorf("store: creating %s: %w", d, err)
		}
	}
	// A temp file is an uncommitted write from a crashed process: by
	// the publish protocol it was never renamed into objects/, so it is
	// garbage by construction.
	if names, err := fsys.ReadDir(s.tmpDir); err == nil {
		for _, name := range names {
			if err := fsys.Remove(join(s.tmpDir, name)); err != nil {
				s.errors.Add(1)
			}
		}
	} else {
		s.errors.Add(1)
	}
	if err := s.scan(); err != nil {
		return nil, err
	}
	go s.writer()
	return s, nil
}

// scan verifies every published entry and builds the warm index.
func (s *Store) scan() error {
	names, err := s.fs.ReadDir(s.objDir)
	if err != nil {
		return fmt.Errorf("store: scanning %s: %w", s.objDir, err)
	}
	type found struct {
		key, name string
		size      int64
		mtime     time.Time
	}
	var entries []found
	for _, name := range names {
		path := join(s.objDir, name)
		raw, err := s.fs.ReadFile(path)
		if err != nil {
			// Unreadable is not corrupt: leave the file for a later
			// attempt, count the failed operation, serve without it.
			s.errors.Add(1)
			continue
		}
		key, _, err := Decode(raw)
		if err != nil {
			s.corrupt.Add(1)
			s.quarantine(name)
			continue
		}
		var mtime time.Time
		if _, mt, err := s.fs.Stat(path); err == nil {
			mtime = mt
		} else {
			s.errors.Add(1)
		}
		entries = append(entries, found{key: key, name: name, size: int64(len(raw)), mtime: mtime})
	}
	// Oldest mtime gets the oldest access tick, so boot-time LRU order
	// approximates the previous process's recency.
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	s.mu.Lock()
	for _, e := range entries {
		s.clock++
		s.index[e.key] = &entryMeta{name: e.name, size: e.size, lastUsed: s.clock, warm: true}
		s.totalBytes += e.size
	}
	victims := s.evictLocked()
	s.mu.Unlock()
	s.removeFiles(victims)
	return nil
}

// entryName is the stable file name of a key: keys are arbitrary byte
// strings (they embed NUL-separated cache-key structure), so the name
// is their hash, and the key itself lives inside the frame.
func entryName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".art"
}

// Get returns the stored payload for key. Every failure mode — absent,
// unreadable, corrupt — is a miss: the caller recomputes, the store
// counts.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	m, ok := s.index[key]
	if !ok {
		s.mu.Unlock()
		s.misses.Add(1)
		return nil, false
	}
	s.clock++
	m.lastUsed = s.clock
	name, warm := m.name, m.warm
	s.mu.Unlock()

	raw, err := s.fs.ReadFile(join(s.objDir, name))
	if err != nil {
		// Transient or injected read failure: keep the entry indexed (a
		// later read may succeed), count, degrade to recompute.
		s.errors.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	gotKey, payload, err := Decode(raw)
	if err != nil || gotKey != key {
		// The frame is damaged (or a hash collision planted a foreign
		// key, which verification treats the same way): quarantine it so
		// it is never consulted again, and never poisons a response.
		s.corrupt.Add(1)
		s.mu.Lock()
		if cur, ok := s.index[key]; ok && cur.name == name {
			delete(s.index, key)
			s.totalBytes -= cur.size
		}
		s.mu.Unlock()
		s.quarantine(name)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	if warm {
		s.warmHits.Add(1)
	}
	return payload, true
}

// Put schedules key→payload for write-behind persistence. It never
// blocks: a duplicate (already published or already queued) is a
// no-op — entries are content-addressed, so rewriting is pure waste —
// and a full queue sheds the request with a counter instead of making
// the caller wait on disk.
func (s *Store) Put(key string, payload []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.index[key]; ok {
		return
	}
	if _, ok := s.pending[key]; ok {
		return
	}
	select {
	case s.queue <- writeReq{key: key, payload: payload}:
		s.pending[key] = struct{}{}
	default:
		s.shed.Add(1)
	}
}

// writer is the single background goroutine draining the write-behind
// queue; it exits when Close closes the queue, after draining what was
// already accepted.
func (s *Store) writer() {
	defer close(s.writerDone)
	for req := range s.queue {
		if req.flush != nil {
			close(req.flush)
			continue
		}
		s.write(req.key, req.payload, false)
		s.mu.Lock()
		delete(s.pending, req.key)
		s.mu.Unlock()
	}
}

// write publishes one entry with the crash-safe protocol: encode,
// write to a unique temp file (synced), atomically rename into
// objects/. Any failure is counted and the entry is simply not
// published — the artifact stays recomputable. Reports whether the
// entry was published.
func (s *Store) write(key string, payload []byte, warm bool) bool {
	blob := Encode(key, payload)
	name := entryName(key)
	tmp := join(s.tmpDir, fmt.Sprintf("%s.%d.tmp", name, s.tmpSeq.Add(1)))
	if err := s.fs.WriteFile(tmp, blob); err != nil {
		// The temp file (if any) is unreferenced garbage; the next Open
		// sweeps it. Removing it here would risk a second failure on a
		// disk that is already misbehaving.
		s.errors.Add(1)
		return false
	}
	if err := s.fs.Rename(tmp, join(s.objDir, name)); err != nil {
		s.errors.Add(1)
		if err := s.fs.Remove(tmp); err != nil {
			s.errors.Add(1)
		}
		return false
	}
	s.writes.Add(1)
	s.mu.Lock()
	if _, ok := s.index[key]; !ok {
		s.clock++
		s.index[key] = &entryMeta{name: name, size: int64(len(blob)), lastUsed: s.clock, warm: warm}
		s.totalBytes += int64(len(blob))
	}
	victims := s.evictLocked()
	s.mu.Unlock()
	s.removeFiles(victims)
	return true
}

// evictLocked (caller holds mu) drops least-recently-used entries until
// the byte bound holds, returning the file names to remove outside the
// lock.
func (s *Store) evictLocked() []string {
	if s.maxBytes <= 0 {
		return nil
	}
	var victims []string
	for s.totalBytes > s.maxBytes && len(s.index) > 0 {
		var oldKey string
		var old *entryMeta
		for k, m := range s.index {
			if old == nil || m.lastUsed < old.lastUsed {
				oldKey, old = k, m
			}
		}
		delete(s.index, oldKey)
		s.totalBytes -= old.size
		victims = append(victims, old.name)
		s.evictions.Add(1)
	}
	return victims
}

func (s *Store) removeFiles(names []string) {
	for _, name := range names {
		if err := s.fs.Remove(join(s.objDir, name)); err != nil {
			s.errors.Add(1)
		}
	}
}

// quarantine moves a damaged entry file out of objects/ so it is never
// read again, preserving the bytes for post-mortem. A failed move
// falls back to removal; a failed removal is only counted — the read
// path already dropped the entry from the index, so the file is inert
// either way.
func (s *Store) quarantine(name string) {
	if err := s.fs.Rename(join(s.objDir, name), join(s.quarDir, name)); err != nil {
		s.errors.Add(1)
		if err := s.fs.Remove(join(s.objDir, name)); err != nil {
			s.errors.Add(1)
		}
	}
}

// Flush blocks until every write accepted before the call has been
// attempted (published or counted as failed), or ctx ends. The
// graceful-drain path uses it so a clean shutdown never loses a
// completed artifact.
func (s *Store) Flush(ctx context.Context) error {
	ch := make(chan struct{})
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil
		}
		sent := false
		select {
		case s.queue <- writeReq{flush: ch}:
			sent = true
		default:
		}
		s.mu.Unlock()
		if sent {
			break
		}
		// Queue full: the writer is behind. Yield briefly and retry the
		// barrier send; blocking on the channel while holding mu would
		// deadlock against the writer's own index updates.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close drains the already-accepted write queue and stops the writer.
// Further Puts are silently dropped; Get keeps working (reads need no
// writer).
func (s *Store) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.queue)
	<-s.writerDone
}

// Degraded reports whether the store has seen any filesystem failure
// since Open. Requests keep succeeding regardless (every store failure
// degrades to recompute); the flag surfaces on /healthz so operators
// notice the disk before it matters.
func (s *Store) Degraded() bool { return s.errors.Load() > 0 }

// Len returns the number of published entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	entries, bytes := len(s.index), s.totalBytes
	s.mu.Unlock()
	return Stats{
		Entries:       entries,
		Bytes:         bytes,
		Hits:          s.hits.Load(),
		WarmHits:      s.warmHits.Load(),
		Misses:        s.misses.Load(),
		Writes:        s.writes.Load(),
		Errors:        s.errors.Load(),
		Corrupt:       s.corrupt.Load(),
		Shed:          s.shed.Load(),
		Evictions:     s.evictions.Load(),
		Imported:      s.imported.Load(),
		ImportSkipped: s.importSkipped.Load(),
	}
}

package store

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func open(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

func mustFlush(t *testing.T, s *Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Flush(ctx); err != nil {
		t.Fatalf("Flush: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	s := open(t, Config{Dir: t.TempDir()})
	s.Put("alpha", []byte("payload-a"))
	s.Put("beta", []byte("payload-b"))
	mustFlush(t, s)

	got, ok := s.Get("alpha")
	if !ok || string(got) != "payload-a" {
		t.Fatalf("Get alpha = %q, %v", got, ok)
	}
	if _, ok := s.Get("absent"); ok {
		t.Fatal("Get of absent key succeeded")
	}
	st := s.Stats()
	if st.Writes != 2 || st.Hits != 1 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.WarmHits != 0 {
		t.Fatalf("fresh writes must not count as warm hits: %+v", st)
	}
	// Duplicate Put of a published key is a no-op, not a rewrite.
	s.Put("alpha", []byte("payload-a"))
	mustFlush(t, s)
	if st := s.Stats(); st.Writes != 2 {
		t.Fatalf("duplicate Put caused a write: %+v", st)
	}
}

func TestWarmReopenServesPreviousEntries(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, Config{Dir: dir})
	s1.Put("report/one", []byte("serialized report one"))
	s1.Put("body/two", []byte("rendered body two"))
	mustFlush(t, s1)
	s1.Close()

	s2 := open(t, Config{Dir: dir})
	for key, want := range map[string]string{
		"report/one": "serialized report one",
		"body/two":   "rendered body two",
	} {
		got, ok := s2.Get(key)
		if !ok || string(got) != want {
			t.Fatalf("after reopen, Get(%q) = %q, %v", key, got, ok)
		}
	}
	st := s2.Stats()
	if st.WarmHits != 2 || st.Hits != 2 {
		t.Fatalf("warm hits = %d (hits %d), want 2", st.WarmHits, st.Hits)
	}
}

func TestOpenSweepsCrashLeftTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, "tmp")
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		t.Fatal(err)
	}
	// A kill -9 mid-write leaves an unrenamed temp file: garbage by the
	// publish protocol, swept at the next boot.
	if err := os.WriteFile(filepath.Join(tmp, "deadbeef.art.7.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := open(t, Config{Dir: dir})
	if names, err := os.ReadDir(tmp); err != nil || len(names) != 0 {
		t.Fatalf("tmp dir after Open: %v entries, err %v", len(names), err)
	}
	if st := s.Stats(); st.Entries != 0 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCorruptionCorpusQuarantinedAtOpen(t *testing.T) {
	// The committed corpus holds one valid entry and four flavors of
	// damage: truncation, a flipped payload bit, a flipped checksum
	// byte, and a future format version. The loader must quarantine and
	// count all four and serve the survivor.
	corpus := filepath.Join("..", "..", "testdata", "store")
	dir := t.TempDir()
	objects := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objects, 0o755); err != nil {
		t.Fatal(err)
	}
	names, err := os.ReadDir(corpus)
	if err != nil {
		t.Fatalf("reading corpus: %v", err)
	}
	for _, n := range names {
		b, err := os.ReadFile(filepath.Join(corpus, n.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(objects, n.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := open(t, Config{Dir: dir})
	st := s.Stats()
	if st.Corrupt != 4 {
		t.Fatalf("corrupt = %d, want 4 (stats %+v)", st.Corrupt, st)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	if got, ok := s.Get("corpus/valid"); !ok || !bytes.Contains(got, []byte(`"ok":true`)) {
		t.Fatalf("valid corpus entry not served: %q, %v", got, ok)
	}
	quarantined, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(quarantined) != 4 {
		t.Fatalf("quarantine dir: %d entries, err %v", len(quarantined), err)
	}
	// Reopening after quarantine is clean: the damage was moved, not
	// recounted.
	s.Close()
	s2 := open(t, Config{Dir: dir})
	if st := s2.Stats(); st.Corrupt != 0 || st.Entries != 1 {
		t.Fatalf("second open stats = %+v", st)
	}
}

func TestGetQuarantinesCorruptionFoundAtRead(t *testing.T) {
	dir := t.TempDir()
	s := open(t, Config{Dir: dir})
	s.Put("victim", []byte("soon to be damaged"))
	mustFlush(t, s)

	// Flip one payload byte on disk behind the store's back.
	name := entryName("victim")
	path := filepath.Join(dir, "objects", name)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+len("victim")+3] ^= 0x08
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get("victim"); ok {
		t.Fatal("corrupt entry was served")
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Misses != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", name)); err != nil {
		t.Fatalf("damaged entry not quarantined: %v", err)
	}
	// The key is gone from the index: the second Get is a plain miss.
	if _, ok := s.Get("victim"); ok {
		t.Fatal("quarantined entry resurrected")
	}
}

func TestEvictionIsLRU(t *testing.T) {
	entrySize := EncodedSize("key-a", bytes.Repeat([]byte("x"), 100))
	s := open(t, Config{Dir: t.TempDir(), MaxBytes: 2 * entrySize})
	payload := bytes.Repeat([]byte("x"), 100)
	s.Put("key-a", payload)
	mustFlush(t, s)
	s.Put("key-b", payload)
	mustFlush(t, s)
	if _, ok := s.Get("key-a"); !ok { // touch a so b is the LRU entry
		t.Fatal("key-a missing before eviction")
	}
	s.Put("key-c", payload)
	mustFlush(t, s)

	if _, ok := s.Get("key-b"); ok {
		t.Fatal("LRU entry key-b survived eviction")
	}
	if _, ok := s.Get("key-a"); !ok {
		t.Fatal("recently used key-a was evicted")
	}
	if _, ok := s.Get("key-c"); !ok {
		t.Fatal("fresh key-c was evicted")
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (stats %+v)", st.Evictions, st)
	}
	if st.Bytes > 2*entrySize {
		t.Fatalf("bytes = %d exceeds bound %d", st.Bytes, 2*entrySize)
	}
}

func TestFullQueueShedsInsteadOfBlocking(t *testing.T) {
	ff := NewFaultFS(nil, 1)
	s := open(t, Config{Dir: t.TempDir(), QueueDepth: 1, FS: ff})
	ff.SetFaults(Faults{Latency: 20 * time.Millisecond})
	for i := 0; i < 32; i++ {
		s.Put(string(rune('a'+i)), []byte("payload"))
	}
	mustFlush(t, s)
	st := s.Stats()
	if st.Shed == 0 {
		t.Fatalf("no sheds despite a slow single-slot queue: %+v", st)
	}
	if st.Writes+st.Shed != 32 {
		t.Fatalf("writes %d + shed %d != 32 puts", st.Writes, st.Shed)
	}
}

func TestInjectedFaultsAreCountedAndDegrade(t *testing.T) {
	ff := NewFaultFS(nil, 42)
	dir := t.TempDir()
	s := open(t, Config{Dir: dir, FS: ff})
	s.Put("pre-existing", []byte("stored while healthy"))
	mustFlush(t, s)

	ff.SetFaults(Faults{FailProb: 1})
	// Reads fail: degrade to miss, count the failed op, keep the entry.
	if _, ok := s.Get("pre-existing"); ok {
		t.Fatal("Get succeeded through a failing filesystem")
	}
	// Writes fail: the artifact is just not persisted.
	s.Put("new-key", []byte("never lands"))
	mustFlush(t, s)
	if !s.Degraded() {
		t.Fatal("store not degraded after injected faults")
	}
	st := s.Stats()
	if st.Errors != ff.Injected() {
		t.Fatalf("errors = %d, injected = %d: every injected fault must be accounted", st.Errors, ff.Injected())
	}
	if st.Errors == 0 {
		t.Fatal("no errors recorded")
	}

	// Heal the disk: the kept entry serves again.
	ff.SetFaults(Faults{})
	if got, ok := s.Get("pre-existing"); !ok || string(got) != "stored while healthy" {
		t.Fatalf("entry lost after transient faults: %q, %v", got, ok)
	}
}

func TestTornWriteIsQuarantinedAtRead(t *testing.T) {
	ff := NewFaultFS(nil, 7)
	dir := t.TempDir()
	s := open(t, Config{Dir: dir, FS: ff})
	ff.SetFaults(Faults{TornWriteProb: 1})
	s.Put("torn", []byte("this payload will be half-written by lying hardware"))
	mustFlush(t, s)
	if ff.Torn() != 1 {
		t.Fatalf("torn = %d, want 1", ff.Torn())
	}
	if _, ok := s.Get("torn"); ok {
		t.Fatal("torn entry was served")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("torn entry not counted corrupt: %+v", st)
	}
}

func TestENOSPCDegrades(t *testing.T) {
	ff := NewFaultFS(nil, 9)
	s := open(t, Config{Dir: t.TempDir(), FS: ff})
	ff.SetFaults(Faults{WriteBudget: 64})
	s.Put("too-big", bytes.Repeat([]byte("x"), 4096))
	mustFlush(t, s)
	st := s.Stats()
	if st.Writes != 0 || st.Errors == 0 {
		t.Fatalf("ENOSPC write published anyway: %+v", st)
	}
	if st.Errors != ff.Injected() {
		t.Fatalf("errors = %d, injected = %d", st.Errors, ff.Injected())
	}
}

func TestSnapshotExportImport(t *testing.T) {
	src := open(t, Config{Dir: t.TempDir()})
	want := map[string]string{
		"report/a": "serialized report a",
		"report/b": "serialized report b",
		"body/c":   "rendered body c",
	}
	for k, v := range want {
		src.Put(k, []byte(v))
	}
	mustFlush(t, src)

	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}

	dst := open(t, Config{Dir: t.TempDir()})
	dst.Put("body/c", []byte("rendered body c")) // pre-existing duplicate
	mustFlush(t, dst)
	imported, skipped, err := dst.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if imported != 2 || skipped != 1 {
		t.Fatalf("imported %d skipped %d, want 2/1", imported, skipped)
	}
	for k, v := range want {
		got, ok := dst.Get(k)
		if !ok || string(got) != v {
			t.Fatalf("after import, Get(%q) = %q, %v", k, got, ok)
		}
	}
	// Imported entries count as warm: they predate this process's work.
	if st := dst.Stats(); st.WarmHits != 2 {
		t.Fatalf("warm hits = %d, want 2 (%+v)", st.WarmHits, st)
	}
}

func TestSnapshotImportSkipsDamagedRecordsAndAbortsOnBrokenStream(t *testing.T) {
	src := open(t, Config{Dir: t.TempDir()})
	src.Put("good", []byte("good payload"))
	src.Put("doomed", []byte("to be damaged in transit"))
	mustFlush(t, src)
	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Flip a byte inside the second record's payload region (records are
	// sorted by key: "doomed" then "good"): entry checksums catch it and
	// the import skips just that record.
	damaged := append([]byte{}, buf.Bytes()...)
	damaged[len(damaged)-trailerSize-4] ^= 0x10
	dst := open(t, Config{Dir: t.TempDir()})
	imported, skipped, err := dst.ReadSnapshot(bytes.NewReader(damaged))
	if err != nil {
		t.Fatalf("ReadSnapshot with one damaged record: %v", err)
	}
	if imported != 1 || skipped != 1 {
		t.Fatalf("imported %d skipped %d, want 1/1", imported, skipped)
	}

	// A truncated stream (framing no longer trustworthy) aborts.
	dst2 := open(t, Config{Dir: t.TempDir()})
	if _, _, err := dst2.ReadSnapshot(bytes.NewReader(buf.Bytes()[:buf.Len()-5])); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("truncated stream err = %v, want ErrSnapshot", err)
	}
	// A garbage header aborts before anything happens.
	if _, _, err := dst2.ReadSnapshot(bytes.NewReader([]byte("not a snapshot"))); !errors.Is(err, ErrSnapshot) {
		t.Fatalf("garbage header err = %v, want ErrSnapshot", err)
	}
}

func TestFlushHonorsContext(t *testing.T) {
	ff := NewFaultFS(nil, 3)
	s := open(t, Config{Dir: t.TempDir(), QueueDepth: 1, FS: ff})
	ff.SetFaults(Faults{Latency: 50 * time.Millisecond})
	for i := 0; i < 8; i++ {
		s.Put(string(rune('a'+i)), []byte("slow"))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if err := s.Flush(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Flush under a too-small budget = %v, want DeadlineExceeded", err)
	}
}

func TestCloseDrainsAcceptedWrites(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		s.Put(string(rune('a'+i)), []byte("accepted before close"))
	}
	s.Close()
	accepted := s.Stats().Writes + s.Stats().Shed
	if accepted != 16 {
		t.Fatalf("writes+shed = %d, want 16", accepted)
	}
	// Post-close Put is a silent no-op, and Get still works.
	s.Put("late", []byte("dropped"))
	if _, ok := s.Get("a"); !ok {
		t.Fatal("Get broken after Close")
	}

	s2 := open(t, Config{Dir: dir})
	if got := s2.Len(); uint64(got) != s.Stats().Writes {
		t.Fatalf("reopened entries = %d, writes before close = %d", got, s.Stats().Writes)
	}
}

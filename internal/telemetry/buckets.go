package telemetry

import (
	"math"
	"sort"
	"time"
)

// Request latencies are histogrammed into geometric buckets with ratio
// 10^(1/16) (~15.5% per step), sixteen per decade from 1µs to 10s plus
// one overflow bucket. The resolution is chosen for two properties:
//
//   - quantiles interpolated inside a bucket are within ±7.5% of the
//     true value, comfortably inside the 10% accuracy the status
//     endpoint promises;
//   - every decade anchor (1µs, 10µs, ..., 10s) is an exact bucket
//     bound, and the five coarse pipeline-stats bounds (10µs..100ms)
//     are all decade anchors — so fine counts roll up losslessly to
//     the legacy /metrics exposition (RollupIndex).
const (
	// bucketsPerDecade fixes the ratio r = 10^(1/16) ≈ 1.1548.
	bucketsPerDecade = 16

	// numLatBounds is the count of finite upper bounds: 1µs·10^(i/16)
	// for i in [0, 112]; bound 112 is exactly 10s.
	numLatBounds = 7*bucketsPerDecade + 1

	// NumLatBuckets is the histogram size: every finite bound plus the
	// overflow bucket.
	NumLatBuckets = numLatBounds + 1
)

// latBounds[i] is the inclusive upper bound of bucket i in nanoseconds.
// Decade anchors are computed in integer arithmetic so bucket
// assignment agrees exactly with pipeline.BucketIndex at the bounds the
// two schemes share.
var latBounds = func() [numLatBounds]int64 {
	var b [numLatBounds]int64
	decade := int64(1000) // 1µs in ns
	for i := range b {
		switch {
		case i%bucketsPerDecade == 0:
			b[i] = decade
			decade *= 10
		default:
			b[i] = int64(math.Round(1000 * math.Pow(10, float64(i)/bucketsPerDecade)))
		}
	}
	return b
}()

// BucketIndex returns the fine histogram bucket for a duration, in
// [0, NumLatBuckets). Durations above 10s land in the overflow bucket.
func BucketIndex(d time.Duration) int {
	n := int64(d)
	if n <= latBounds[0] {
		return 0
	}
	if n > latBounds[numLatBounds-1] {
		return numLatBounds
	}
	// Smallest bound that contains n; ~7 probes over 113 bounds.
	return sort.Search(numLatBounds, func(i int) bool { return latBounds[i] >= n })
}

// BucketBound returns the inclusive upper bound of bucket i, or a
// negative duration for the overflow bucket.
func BucketBound(i int) time.Duration {
	if i < 0 || i >= numLatBounds {
		return -1
	}
	return time.Duration(latBounds[i])
}

// BucketLabel renders a bucket's upper bound ("+Inf" for overflow),
// matching the le label convention of the exposition format.
func BucketLabel(i int) string {
	if b := BucketBound(i); b >= 0 {
		return b.String()
	}
	return "+Inf"
}

// RollupIndex maps a fine bucket to the coarse 6-bucket pipeline-stats
// scheme (bounds 10µs, 100µs, 1ms, 10ms, 100ms, +Inf). Because the
// coarse bounds are exact fine bounds, the mapping is lossless: summing
// fine counts by RollupIndex yields byte-for-byte the histogram the
// coarse scheme would have recorded.
func RollupIndex(fine int) int {
	switch {
	case fine <= 1*bucketsPerDecade:
		return 0
	case fine <= 2*bucketsPerDecade:
		return 1
	case fine <= 3*bucketsPerDecade:
		return 2
	case fine <= 4*bucketsPerDecade:
		return 3
	case fine <= 5*bucketsPerDecade:
		return 4
	default:
		return 5
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) of a latency
// distribution from per-bucket counts, interpolating geometrically
// inside the landing bucket. An empty histogram yields 0; ranks landing
// in the overflow bucket are reported as the last finite bound (10s).
func Quantile(counts *[NumLatBuckets]uint64, q float64) time.Duration {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum+1e-9 < rank {
			continue
		}
		if i >= numLatBounds {
			return time.Duration(latBounds[numLatBounds-1])
		}
		upper := float64(latBounds[i])
		frac := (rank - prev) / float64(c)
		if i == 0 {
			// The first bucket spans (0, 1µs] — there is no previous
			// bound to anchor a geometric interpolation, so interpolate
			// linearly from 0 instead of fabricating a ~866ns lower
			// bound that would overstate sub-microsecond quantiles.
			return time.Duration(upper * frac)
		}
		lower := float64(latBounds[i-1])
		return time.Duration(lower * math.Pow(upper/lower, frac))
	}
	return time.Duration(latBounds[numLatBounds-1])
}

package telemetry

import (
	"time"

	"github.com/shelley-go/shelley/internal/obs"
)

// Exemplar is one tail-sampled interesting request: its identity, why
// it was kept, where it landed in the latency histogram, and its full
// span tree (retained from the request's root span by the server's
// trace buffer).
type Exemplar struct {
	TraceID  string
	Endpoint string
	Code     int

	// Reason is "latency" (breached the endpoint's threshold),
	// "error" (non-2xx), or "panic" (contained panic answered 500).
	Reason string

	Duration time.Duration

	// Bucket is the fine histogram bucket the request landed in (see
	// BucketIndex), linking the exemplar to the quantile math.
	Bucket int

	At    time.Time
	Spans []obs.SpanData

	// SpansDropped counts spans the retention buffer had to drop for
	// this trace (oversized trees keep their root plus the earliest
	// spans).
	SpansDropped int
}

// AddExemplar records one exemplar, evicting the oldest once the ring
// is full.
func (e *Engine) AddExemplar(x Exemplar) {
	e.exMu.Lock()
	defer e.exMu.Unlock()
	if len(e.ex) < e.cfg.Exemplars {
		e.ex = append(e.ex, x)
		return
	}
	e.ex[e.exNext] = x
	e.exNext = (e.exNext + 1) % len(e.ex)
}

// Exemplars returns the retained exemplars, newest first.
func (e *Engine) Exemplars() []Exemplar {
	e.exMu.Lock()
	defer e.exMu.Unlock()
	out := make([]Exemplar, 0, len(e.ex))
	// Before the ring wraps, e.ex is in insertion order; after, the
	// oldest entry sits at exNext.
	for k := len(e.ex) - 1; k >= 0; k-- {
		i := k
		if len(e.ex) == e.cfg.Exemplars {
			i = (e.exNext + k) % len(e.ex)
		}
		out = append(out, e.ex[i])
	}
	return out
}

package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SLO is one service-level objective over an endpoint's histogram
// family. Target is the objective success ratio in (0, 1): 0.999 means
// at most one bad request per thousand. With Latency zero the SLO is an
// availability objective (bad = 5xx); with Latency set it is a latency
// objective (bad = finished above Latency). Latency thresholds are
// evaluated at the containing bucket's upper bound, so a threshold that
// is an exact bucket bound (any 1µs·10^(k/16), e.g. 1ms) is exact.
type SLO struct {
	Name     string        `json:"name"`
	Endpoint string        `json:"endpoint"`
	Target   float64       `json:"target"`
	Latency  time.Duration `json:"latency,omitempty"`
}

// String renders the flag form, endpoint:latency:target or
// endpoint:availability:target.
func (s SLO) String() string {
	kind := "availability"
	if s.Latency > 0 {
		kind = s.Latency.String()
	}
	return fmt.Sprintf("%s:%s:%g", s.Endpoint, kind, s.Target*100)
}

// DefaultSLOs are the objectives a daemon evaluates when none are
// configured: checks answer successfully 99.9% of the time, and 99% of
// them inside a millisecond (the warm-path promise).
func DefaultSLOs() []SLO {
	return []SLO{
		{Name: "check-availability", Endpoint: "check", Target: 0.999},
		{Name: "check-latency", Endpoint: "check", Target: 0.99, Latency: time.Millisecond},
	}
}

// ParseSLO parses the -slo flag form: endpoint:latency:target or
// endpoint:availability:target, where latency is a Go duration
// ("1ms") and target a percentage ("99.9").
//
//	check:1ms:99          99% of checks under 1ms
//	check:availability:99.9   99.9% of checks non-5xx
func ParseSLO(spec string) (SLO, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return SLO{}, fmt.Errorf("slo %q: want endpoint:latency:target or endpoint:availability:target", spec)
	}
	s := SLO{Endpoint: parts[0]}
	kind := parts[1]
	if kind == "availability" {
		s.Name = parts[0] + "-availability"
	} else {
		d, err := time.ParseDuration(kind)
		if err != nil || d <= 0 {
			return SLO{}, fmt.Errorf("slo %q: latency %q is neither a positive duration nor \"availability\"", spec, kind)
		}
		s.Latency = d
		s.Name = parts[0] + "-latency"
	}
	pct, err := strconv.ParseFloat(parts[2], 64)
	if err != nil || pct <= 0 || pct >= 100 {
		return SLO{}, fmt.Errorf("slo %q: target %q must be a percentage in (0, 100)", spec, parts[2])
	}
	s.Target = pct / 100
	return s, nil
}

// burnRule is one multi-window burn-rate alert rule (Google SRE
// workbook): fire when the error budget burns `burn`× faster than
// sustainable over BOTH windows — the long window for significance,
// the short one so recovered incidents stop firing quickly.
type burnRule struct {
	severity string
	burn     float64
	short    time.Duration
	long     time.Duration
}

var burnRules = []burnRule{
	{severity: "page", burn: 14.4, short: 5 * time.Minute, long: time.Hour},
	{severity: "warn", burn: 6, short: 30 * time.Minute, long: 2 * time.Hour},
}

// budgetWindow is the rolling window error budgets are accounted over
// (the longest alert window).
const budgetWindow = 2 * time.Hour

// SLOStatus is one objective's current evaluation.
type SLOStatus struct {
	SLO SLO

	// BadFrac is the bad-request fraction over Window (the budget
	// window, clamped to retained history).
	BadFrac float64
	Window  time.Duration

	// BurnFast and BurnSlow are the burn rates over the page rule's
	// 5m/1h windows (clamped): multiples of the sustainable error
	// rate, so 1.0 spends exactly the budget and 14.4 exhausts a
	// 30-day budget in two days.
	BurnFast float64
	BurnSlow float64

	// BudgetRemaining is the error budget left over Window, in [0, 1].
	BudgetRemaining float64

	// Firing is "", "warn", or "page".
	Firing string
}

// Alert is one firing condition — an SLO burn or an externally set
// event (drift flips). Keys are stable across evaluations so Since
// survives re-evaluation.
type Alert struct {
	Key      string    `json:"key"`
	Severity string    `json:"severity"`
	Since    time.Time `json:"since"`
	Message  string    `json:"message"`
	Value    float64   `json:"value,omitempty"`

	// Counterexample carries the offending trace for drift alerts.
	Counterexample []string `json:"counterexample,omitempty"`
}

// badFracLocked computes the bad-request fraction for one SLO over a
// window. total is the request count the fraction is over; ok is false
// before two snapshots exist.
func (e *Engine) badFracLocked(s SLO, window time.Duration) (frac float64, effective time.Duration, total uint64, ok bool) {
	st, ok := e.endpointLocked(s.Endpoint, window)
	if !ok {
		return 0, 0, 0, false
	}
	if st.Total == 0 {
		return 0, st.Window, 0, true
	}
	var bad uint64
	if s.Latency <= 0 {
		bad = st.Errors
	} else {
		newest, old, _ := e.pairFor(window)
		var diff [NumLatBuckets]uint64
		expand(newest.hists[s.Endpoint].buckets, old.hists[s.Endpoint].buckets, &diff)
		cut := BucketIndex(s.Latency)
		var good uint64
		for i := 0; i <= cut && i < NumLatBuckets; i++ {
			good += diff[i]
		}
		bad = sub64(st.Total, good)
	}
	return float64(bad) / float64(st.Total), st.Window, st.Total, true
}

// evalSLOs re-evaluates every objective and reconciles the alert map.
// Caller holds e.mu.
func (e *Engine) evalSLOs(now time.Time) {
	if len(e.cfg.SLOs) == 0 {
		return
	}
	statuses := make([]SLOStatus, 0, len(e.cfg.SLOs))
	for _, s := range e.cfg.SLOs {
		st := SLOStatus{SLO: s, BudgetRemaining: 1}
		budget := 1 - s.Target
		if bf, w, total, ok := e.badFracLocked(s, budgetWindow); ok {
			st.BadFrac, st.Window = bf, w
			if total > 0 && budget > 0 {
				st.BudgetRemaining = 1 - bf/budget
				if st.BudgetRemaining < 0 {
					st.BudgetRemaining = 0
				}
			}
		}
		if budget > 0 {
			if bf, _, total, ok := e.badFracLocked(s, burnRules[0].short); ok && total > 0 {
				st.BurnFast = bf / budget
			}
			if bf, _, total, ok := e.badFracLocked(s, burnRules[0].long); ok && total > 0 {
				st.BurnSlow = bf / budget
			}
			for _, rule := range burnRules {
				bs, _, ts, ok1 := e.badFracLocked(s, rule.short)
				bl, _, tl, ok2 := e.badFracLocked(s, rule.long)
				if !ok1 || !ok2 || ts == 0 || tl == 0 {
					continue
				}
				if bs/budget > rule.burn && bl/budget > rule.burn {
					st.Firing = rule.severity
					break // rules are ordered page first
				}
			}
		}
		key := "slo:" + s.Name
		if st.Firing != "" {
			a := Alert{
				Key:      key,
				Severity: st.Firing,
				Since:    now,
				Value:    st.BurnFast,
				Message: fmt.Sprintf("SLO %s burning %.1fx budget (bad %.2f%% over %s, objective %g%%)",
					s.Name, st.BurnFast, st.BadFrac*100, st.Window.Round(time.Second), s.Target*100),
			}
			if prev, ok := e.alerts[key]; ok {
				a.Since = prev.Since
			}
			e.alerts[key] = a
		} else {
			delete(e.alerts, key)
		}
		statuses = append(statuses, st)
	}
	e.sloSt = statuses
}

// SLOStatuses returns the latest evaluation of every objective, in
// config order.
func (e *Engine) SLOStatuses() []SLOStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]SLOStatus, len(e.sloSt))
	copy(out, e.sloSt)
	return out
}

// SetAlert inserts or refreshes an externally owned alert (drift
// flips). A zero Since is stamped from an existing alert with the same
// key, so repeated sets don't reset the firing time.
func (e *Engine) SetAlert(a Alert) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if prev, ok := e.alerts[a.Key]; ok && !prev.Since.IsZero() {
		a.Since = prev.Since
	}
	e.alerts[a.Key] = a
}

// ClearAlert removes an alert by key (no-op when absent).
func (e *Engine) ClearAlert(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.alerts, key)
}

// Alerts returns every firing alert, pages first, then by key.
func (e *Engine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.alerts))
	for _, a := range e.alerts {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity == "page"
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Package telemetry is a zero-dependency in-process time-series
// engine. It periodically snapshots the process's cumulative counters,
// gauges, and latency histograms into fixed-interval rings (a fine
// tier for "what happened in the last ten minutes at one-second
// resolution" and a coarse tier for "the last two hours at fifteen
// seconds"), derives rolling rates and percentiles by differencing
// snapshots over a requested window, evaluates SLO error-budget
// burn-rate alerts, and keeps a bounded ring of exemplar traces for
// interesting requests. Everything is passive: the owner drives the
// clock through Tick, so tests are deterministic and an idle daemon
// does no background work beyond one scrape per interval.
package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Sample is one scrape of the process's cumulative state, produced by
// Config.Source. All values are since-boot cumulative (counters,
// histogram counts) or instantaneous (gauges); the engine turns them
// into windowed rates by differencing.
type Sample struct {
	Counters map[string]float64
	Gauges   map[string]float64
	Hists    map[string]HistSample
}

// HistSample is one endpoint's cumulative latency histogram plus its
// request and error totals.
type HistSample struct {
	// Total counts finished requests; Errors the 5xx subset.
	Total  uint64
	Errors uint64

	// Buckets are cumulative per-bucket counts (see BucketIndex).
	Buckets [NumLatBuckets]uint64
}

// Tier describes one snapshot ring: a capture interval and how many
// slots it retains. Span = Interval × (Slots−1).
type Tier struct {
	Interval time.Duration
	Slots    int
}

// Config configures an Engine.
type Config struct {
	// Tiers, finest first. The first tier's interval is the engine's
	// base tick rate; coarser tiers subsample it. Defaults to
	// 1s × 600 (10 min) and 15s × 480 (2 h).
	Tiers []Tier

	// SLOs are the objectives evaluated on every tick.
	SLOs []SLO

	// Source produces one Sample per tick. Nil is allowed (the engine
	// then only serves alerts set externally and exemplars).
	Source func() Sample

	// Exemplars bounds the exemplar ring. Defaults to 64.
	Exemplars int
}

func (c Config) withDefaults() Config {
	if len(c.Tiers) == 0 {
		c.Tiers = []Tier{{Interval: time.Second, Slots: 600}, {Interval: 15 * time.Second, Slots: 480}}
	}
	if c.Exemplars <= 0 {
		c.Exemplars = 64
	}
	return c
}

// slot is one captured snapshot. vals and hists are immutable once
// built, so a slot may be shared between tiers.
type slot struct {
	at time.Time

	// vals is schema-indexed: Engine.schema maps a metric name to its
	// position. Older slots may be shorter than the current schema
	// (series that appeared later read as zero).
	vals []float64

	hists map[string]histSlot
}

// histSlot stores a cumulative histogram sparsely — only buckets that
// have ever counted — which bounds ring memory at roughly
// (endpoints × touched-buckets × 16 B × slots).
type histSlot struct {
	total, errors uint64
	buckets       []bucketCount
}

type bucketCount struct {
	idx uint8
	n   uint64
}

// expand writes newest−old into a dense per-bucket diff.
func expand(newest, old []bucketCount, out *[NumLatBuckets]uint64) {
	for _, bc := range newest {
		out[bc.idx] += bc.n
	}
	for _, bc := range old {
		out[bc.idx] -= min64(out[bc.idx], bc.n)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func sub64(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

type tierRing struct {
	interval time.Duration
	slots    []slot
	head     int // index of the newest slot
	n        int // filled count
}

func (t *tierRing) newest() *slot { return &t.slots[t.head] }

// back returns the k-th newest slot (k = 0 is newest). k must be < n.
func (t *tierRing) back(k int) *slot {
	return &t.slots[((t.head-k)%len(t.slots)+len(t.slots))%len(t.slots)]
}

func (t *tierRing) push(s slot) {
	if t.n > 0 {
		t.head = (t.head + 1) % len(t.slots)
	}
	t.slots[t.head] = s
	if t.n < len(t.slots) {
		t.n++
	}
}

// pair returns the newest slot and the youngest slot at least `window`
// older, clamped to the oldest retained slot. ok is false with fewer
// than two slots.
func (t *tierRing) pair(window time.Duration) (newest, old *slot, ok bool) {
	if t.n < 2 {
		return nil, nil, false
	}
	newest = t.newest()
	cut := newest.at.Add(-window)
	for k := 1; k < t.n; k++ {
		old = t.back(k)
		if !old.at.After(cut) {
			break
		}
	}
	return newest, old, true
}

type seriesInfo struct {
	name  string
	gauge bool
}

// Engine is the time-series engine. All methods are safe for
// concurrent use; Tick is expected from a single driving goroutine.
type Engine struct {
	cfg Config

	mu     sync.Mutex
	start  time.Time
	last   time.Time
	schema map[string]int
	series []seriesInfo
	tiers  []tierRing
	sloSt  []SLOStatus
	alerts map[string]Alert

	exMu   sync.Mutex
	ex     []Exemplar // grows to cfg.Exemplars, then overwrites
	exNext int        // next overwrite position once full
}

// New builds an Engine. No goroutines are started; call Tick on the
// first tier's interval.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:    cfg,
		schema: make(map[string]int),
		alerts: make(map[string]Alert),
		tiers:  make([]tierRing, len(cfg.Tiers)),
	}
	for i, t := range cfg.Tiers {
		e.tiers[i] = tierRing{interval: t.Interval, slots: make([]slot, t.Slots)}
	}
	return e
}

// Interval is the base tick rate (the finest tier's interval).
func (e *Engine) Interval() time.Duration { return e.cfg.Tiers[0].Interval }

// Start returns the first tick time (zero before the first tick).
func (e *Engine) Start() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.start
}

// LastTick returns the most recent tick time.
func (e *Engine) LastTick() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// Tick scrapes the source once, records the snapshot into every tier
// that is due, and re-evaluates SLOs. The caller supplies the clock so
// tests can drive synthetic time.
func (e *Engine) Tick(now time.Time) {
	var s Sample
	if e.cfg.Source != nil {
		s = e.cfg.Source()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.start.IsZero() {
		e.start = now
	}
	e.last = now
	sl := e.buildSlot(now, s)
	base := e.tiers[0].interval
	for i := range e.tiers {
		t := &e.tiers[i]
		// Capture when due; the half-base tolerance absorbs tick
		// jitter so a 15s tier driven by ~1s ticks stays on cadence.
		if t.n > 0 && now.Sub(t.newest().at) < t.interval-base/2 {
			continue
		}
		t.push(sl)
	}
	e.evalSLOs(now)
}

func (e *Engine) buildSlot(now time.Time, s Sample) slot {
	idx := func(name string, gauge bool) int {
		i, ok := e.schema[name]
		if !ok {
			i = len(e.series)
			e.schema[name] = i
			e.series = append(e.series, seriesInfo{name: name, gauge: gauge})
		}
		return i
	}
	// Resolve indices first so vals is sized once.
	for name := range s.Counters {
		idx(name, false)
	}
	for name := range s.Gauges {
		idx(name, true)
	}
	vals := make([]float64, len(e.series))
	for name, v := range s.Counters {
		vals[e.schema[name]] = v
	}
	for name, v := range s.Gauges {
		vals[e.schema[name]] = v
	}
	var hists map[string]histSlot
	if len(s.Hists) > 0 {
		hists = make(map[string]histSlot, len(s.Hists))
		for name, h := range s.Hists {
			hs := histSlot{total: h.Total, errors: h.Errors}
			for i, n := range h.Buckets {
				if n != 0 {
					hs.buckets = append(hs.buckets, bucketCount{idx: uint8(i), n: n})
				}
			}
			hists[name] = hs
		}
	}
	return slot{at: now, vals: vals, hists: hists}
}

// tierFor picks the finest tier whose span covers the window.
func (e *Engine) tierFor(window time.Duration) *tierRing {
	for i := range e.tiers {
		t := &e.tiers[i]
		if t.interval*time.Duration(len(t.slots)-1) >= window {
			return t
		}
	}
	return &e.tiers[len(e.tiers)-1]
}

// pairFor resolves a window to a (newest, old) snapshot pair, falling
// back to the base tier when the preferred coarse tier has not
// captured two slots yet (early in process life).
func (e *Engine) pairFor(window time.Duration) (*slot, *slot, bool) {
	t := e.tierFor(window)
	newest, old, ok := t.pair(window)
	if !ok && t != &e.tiers[0] {
		newest, old, ok = e.tiers[0].pair(window)
	}
	return newest, old, ok
}

// EndpointStats are windowed request statistics for one histogram
// family.
type EndpointStats struct {
	Endpoint string

	// Window is the effective window: the requested one, clamped to
	// the span the rings actually hold.
	Window time.Duration

	// Total and Errors count requests finished in the window.
	Total  uint64
	Errors uint64

	// Rate is requests per second; ErrorRate the 5xx fraction.
	Rate      float64
	ErrorRate float64

	P50, P95, P99 time.Duration
}

// Endpoint derives rolling statistics for one endpoint over a window.
// ok is false before two snapshots exist or if the endpoint has never
// been sampled.
func (e *Engine) Endpoint(name string, window time.Duration) (EndpointStats, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.endpointLocked(name, window)
}

func (e *Engine) endpointLocked(name string, window time.Duration) (EndpointStats, bool) {
	newest, old, ok := e.pairFor(window)
	if !ok {
		return EndpointStats{}, false
	}
	hn, ok := newest.hists[name]
	if !ok {
		return EndpointStats{}, false
	}
	ho := old.hists[name] // zero value when the endpoint is newer than `old`
	dt := newest.at.Sub(old.at)
	if dt <= 0 {
		return EndpointStats{}, false
	}
	var diff [NumLatBuckets]uint64
	expand(hn.buckets, ho.buckets, &diff)
	st := EndpointStats{
		Endpoint: name,
		Window:   dt,
		Total:    sub64(hn.total, ho.total),
		Errors:   sub64(hn.errors, ho.errors),
	}
	st.Rate = float64(st.Total) / dt.Seconds()
	if st.Total > 0 {
		st.ErrorRate = float64(st.Errors) / float64(st.Total)
	}
	st.P50 = Quantile(&diff, 0.50)
	st.P95 = Quantile(&diff, 0.95)
	st.P99 = Quantile(&diff, 0.99)
	return st, true
}

// BucketDiff returns the windowed per-bucket latency counts for one
// endpoint — the raw histogram behind Endpoint's quantiles, used to
// link exemplars to the bucket they landed in.
func (e *Engine) BucketDiff(name string, window time.Duration) ([NumLatBuckets]uint64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var diff [NumLatBuckets]uint64
	newest, old, ok := e.pairFor(window)
	if !ok {
		return diff, false
	}
	hn, ok := newest.hists[name]
	if !ok {
		return diff, false
	}
	expand(hn.buckets, old.hists[name].buckets, &diff)
	return diff, true
}

// Endpoints lists every histogram family seen in the latest snapshot,
// sorted.
func (e *Engine) Endpoints() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tiers[0].n == 0 {
		return nil
	}
	hists := e.tiers[0].newest().hists
	out := make([]string, 0, len(hists))
	for name := range hists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CounterRate returns a counter's per-second rate over a window. For a
// gauge series it returns the latest value instead (rates of
// instantaneous values are meaningless).
func (e *Engine) CounterRate(name string, window time.Duration) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.schema[name]
	if !ok {
		return 0, false
	}
	if e.series[i].gauge {
		return e.latestLocked(i)
	}
	newest, old, ok := e.pairFor(window)
	if !ok {
		return 0, false
	}
	dt := newest.at.Sub(old.at)
	if dt <= 0 {
		return 0, false
	}
	var nv, ov float64
	if i < len(newest.vals) {
		nv = newest.vals[i]
	}
	if i < len(old.vals) {
		ov = old.vals[i]
	}
	d := nv - ov
	if d < 0 {
		d = 0
	}
	return d / dt.Seconds(), true
}

// Value returns the latest sampled value of any series (counter or
// gauge).
func (e *Engine) Value(name string) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	i, ok := e.schema[name]
	if !ok {
		return 0, false
	}
	return e.latestLocked(i)
}

func (e *Engine) latestLocked(i int) (float64, bool) {
	if e.tiers[0].n == 0 {
		return 0, false
	}
	newest := e.tiers[0].newest()
	if i >= len(newest.vals) {
		return 0, false
	}
	return newest.vals[i], true
}

// Gauges returns the latest value of every gauge series, sorted by
// name — the "right now" block of the status page.
func (e *Engine) Gauges() map[string]float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.tiers[0].n == 0 {
		return nil
	}
	newest := e.tiers[0].newest()
	out := make(map[string]float64)
	for i, s := range e.series {
		if s.gauge && i < len(newest.vals) {
			out[s.name] = newest.vals[i]
		}
	}
	return out
}

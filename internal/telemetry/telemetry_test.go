package telemetry_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/telemetry"
)

func TestBucketAnchorsExact(t *testing.T) {
	anchors := []struct {
		d    time.Duration
		fine int
	}{
		{time.Microsecond, 0},
		{10 * time.Microsecond, 16},
		{100 * time.Microsecond, 32},
		{time.Millisecond, 48},
		{10 * time.Millisecond, 64},
		{100 * time.Millisecond, 80},
		{time.Second, 96},
		{10 * time.Second, 112},
	}
	for _, a := range anchors {
		if got := telemetry.BucketIndex(a.d); got != a.fine {
			t.Errorf("BucketIndex(%v) = %d, want %d", a.d, got, a.fine)
		}
		if got := telemetry.BucketBound(a.fine); got != a.d {
			t.Errorf("BucketBound(%d) = %v, want %v", a.fine, got, a.d)
		}
	}
	if telemetry.BucketIndex(time.Minute) != telemetry.NumLatBuckets-1 {
		t.Errorf("1m should land in the overflow bucket")
	}
	// Bounds are strictly increasing.
	for i := 1; i < telemetry.NumLatBuckets-1; i++ {
		if telemetry.BucketBound(i) <= telemetry.BucketBound(i-1) {
			t.Fatalf("bounds not increasing at %d: %v <= %v", i, telemetry.BucketBound(i), telemetry.BucketBound(i-1))
		}
	}
}

// The fine scheme must roll up to pipeline's coarse scheme exactly:
// for any duration, the coarse bucket of the fine bucket equals the
// coarse bucket computed directly.
func TestRollupMatchesPipelineBucketing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		d := time.Duration(rng.Int63n(int64(20 * time.Second)))
		fine := telemetry.BucketIndex(d)
		if got, want := telemetry.RollupIndex(fine), pipeline.BucketIndex(d); got != want {
			t.Fatalf("d=%v fine=%d: RollupIndex=%d, pipeline.BucketIndex=%d", d, fine, got, want)
		}
	}
	// Exact bounds, where off-by-one inclusivity bugs live.
	for _, d := range []time.Duration{10 * time.Microsecond, 100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond} {
		for _, dd := range []time.Duration{d - 1, d, d + 1} {
			fine := telemetry.BucketIndex(dd)
			if got, want := telemetry.RollupIndex(fine), pipeline.BucketIndex(dd); got != want {
				t.Fatalf("boundary d=%v: rollup=%d pipeline=%d", dd, got, want)
			}
		}
	}
}

// Quantiles interpolated from bucket counts must stay within the
// geometric-bucket error bound (±7.5%, tested at 8% for slack) of the
// true sample quantiles.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		var counts [telemetry.NumLatBuckets]uint64
		samples := make([]float64, 0, 20000)
		for i := 0; i < 20000; i++ {
			// Log-uniform over 5µs..500ms — the daemon's real range.
			ns := 5e3 * math.Pow(1e5, rng.Float64())
			samples = append(samples, ns)
			counts[telemetry.BucketIndex(time.Duration(ns))]++
		}
		sort.Float64s(samples)
		for _, q := range []float64{0.50, 0.95, 0.99} {
			truth := samples[int(q*float64(len(samples)))-1]
			got := float64(telemetry.Quantile(&counts, q))
			if rel := math.Abs(got-truth) / truth; rel > 0.08 {
				t.Errorf("trial %d q%.0f: got %v true %v (%.1f%% off)",
					trial, q*100, time.Duration(got), time.Duration(truth), rel*100)
			}
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty [telemetry.NumLatBuckets]uint64
	if got := telemetry.Quantile(&empty, 0.99); got != 0 {
		t.Errorf("empty histogram: got %v, want 0", got)
	}
	var over [telemetry.NumLatBuckets]uint64
	over[telemetry.NumLatBuckets-1] = 10
	if got := telemetry.Quantile(&over, 0.5); got != 10*time.Second {
		t.Errorf("overflow-only histogram: got %v, want 10s", got)
	}
	var one [telemetry.NumLatBuckets]uint64
	one[48] = 1 // (866µs, 1ms]
	got := telemetry.Quantile(&one, 0.99)
	if got < 866*time.Microsecond || got > time.Millisecond {
		t.Errorf("single-sample quantile %v outside its bucket", got)
	}
}

// TestQuantileFirstBucket pins the bucket-0 interpolation: the first
// bucket spans (0, 1µs], so with all mass there quantiles must
// interpolate linearly from 0 — the old geometric interpolation
// fabricated a lower bound of 1µs/10^(1/16) ≈ 866ns and could never
// report anything below it, overstating every sub-microsecond quantile.
func TestQuantileFirstBucket(t *testing.T) {
	var counts [telemetry.NumLatBuckets]uint64
	counts[0] = 100
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.10, 100 * time.Nanosecond},
		{0.50, 500 * time.Nanosecond},
		{0.99, 990 * time.Nanosecond},
		{1.00, time.Microsecond},
	} {
		got := telemetry.Quantile(&counts, tc.q)
		if got != tc.want {
			t.Errorf("q%.2f = %v, want %v", tc.q, got, tc.want)
		}
	}
	// Single observation: the q is the bucket's full span, still capped
	// by the upper bound.
	var single [telemetry.NumLatBuckets]uint64
	single[0] = 1
	if got := telemetry.Quantile(&single, 0.5); got <= 0 || got > time.Microsecond {
		t.Errorf("single-sample bucket-0 quantile %v outside (0, 1µs]", got)
	}
}

// fakeDaemon simulates cumulative process state for the engine to
// scrape.
type fakeDaemon struct {
	checks  uint64
	errors  uint64
	hist    [telemetry.NumLatBuckets]uint64
	gauge   float64
	counter float64
}

func (f *fakeDaemon) observe(d time.Duration, isErr bool) {
	f.checks++
	if isErr {
		f.errors++
	}
	f.hist[telemetry.BucketIndex(d)]++
}

func (f *fakeDaemon) sample() telemetry.Sample {
	return telemetry.Sample{
		Counters: map[string]float64{"jobs_total": f.counter},
		Gauges:   map[string]float64{"queue_depth": f.gauge},
		Hists: map[string]telemetry.HistSample{
			"check": {Total: f.checks, Errors: f.errors, Buckets: f.hist},
		},
	}
}

func TestEngineWindowedRatesAndQuantiles(t *testing.T) {
	fd := &fakeDaemon{}
	eng := telemetry.New(telemetry.Config{
		Tiers:  []telemetry.Tier{{Interval: time.Second, Slots: 600}, {Interval: 15 * time.Second, Slots: 480}},
		Source: fd.sample,
	})
	now := time.Unix(1_700_000_000, 0)
	// 120 s of 5 req/s at 200µs, with the last 10 s at 50ms.
	for sec := 0; sec < 120; sec++ {
		lat := 200 * time.Microsecond
		if sec >= 110 {
			lat = 50 * time.Millisecond
		}
		for i := 0; i < 5; i++ {
			fd.observe(lat, false)
		}
		fd.counter += 2
		fd.gauge = float64(sec % 7)
		now = now.Add(time.Second)
		eng.Tick(now)
	}
	st, ok := eng.Endpoint("check", 10*time.Second)
	if !ok {
		t.Fatal("no stats for check")
	}
	if st.Rate < 4.5 || st.Rate > 5.5 {
		t.Errorf("10s rate = %.2f, want ~5", st.Rate)
	}
	if st.P50 < 40*time.Millisecond || st.P50 > 60*time.Millisecond {
		t.Errorf("10s p50 = %v, want ~50ms (recent slow phase)", st.P50)
	}
	stLong, ok := eng.Endpoint("check", time.Minute)
	if !ok {
		t.Fatal("no 1m stats")
	}
	if stLong.P50 > time.Millisecond {
		t.Errorf("1m p50 = %v, want ~200µs (mostly fast)", stLong.P50)
	}
	// p99 over 1m: 10/60 seconds were slow → p99 is slow.
	if stLong.P99 < 40*time.Millisecond {
		t.Errorf("1m p99 = %v, want ~50ms", stLong.P99)
	}
	if r, ok := eng.CounterRate("jobs_total", 30*time.Second); !ok || r < 1.8 || r > 2.2 {
		t.Errorf("counter rate = %.2f (ok=%v), want ~2", r, ok)
	}
	if v, ok := eng.Value("queue_depth"); !ok || v != float64(119%7) {
		t.Errorf("gauge = %.0f (ok=%v), want %d", v, ok, 119%7)
	}
	if eps := eng.Endpoints(); len(eps) != 1 || eps[0] != "check" {
		t.Errorf("Endpoints() = %v", eps)
	}
	// A 1h window clamps to the ~2min of history without error.
	stc, ok := eng.Endpoint("check", time.Hour)
	if !ok {
		t.Fatal("clamped window should still answer")
	}
	if stc.Window > 3*time.Minute {
		t.Errorf("clamped window = %v, want ≤ history span", stc.Window)
	}
}

func TestEngineCoarseTierServesLongWindows(t *testing.T) {
	fd := &fakeDaemon{}
	eng := telemetry.New(telemetry.Config{
		Tiers:  []telemetry.Tier{{Interval: time.Second, Slots: 60}, {Interval: 15 * time.Second, Slots: 480}},
		Source: fd.sample,
	})
	now := time.Unix(1_700_000_000, 0)
	// 30 min of steady 1 req/s; the fine tier only holds the last 60 s.
	for sec := 0; sec < 1800; sec++ {
		fd.observe(time.Millisecond, false)
		now = now.Add(time.Second)
		eng.Tick(now)
	}
	st, ok := eng.Endpoint("check", 20*time.Minute)
	if !ok {
		t.Fatal("no long-window stats")
	}
	if st.Window < 19*time.Minute {
		t.Errorf("20m window resolved to %v — coarse tier not used", st.Window)
	}
	if st.Rate < 0.9 || st.Rate > 1.1 {
		t.Errorf("20m rate = %.2f, want ~1", st.Rate)
	}
}

func TestSLOBurnAlertFiresAndClears(t *testing.T) {
	fd := &fakeDaemon{}
	eng := telemetry.New(telemetry.Config{
		Tiers: []telemetry.Tier{{Interval: time.Second, Slots: 600}},
		SLOs: []telemetry.SLO{
			{Name: "check-availability", Endpoint: "check", Target: 0.999},
			{Name: "check-latency", Endpoint: "check", Target: 0.99, Latency: time.Millisecond},
		},
		Source: fd.sample,
	})
	now := time.Unix(1_700_000_000, 0)
	tick := func(n int, lat time.Duration, errFrac float64) {
		for i := 0; i < n; i++ {
			for j := 0; j < 10; j++ {
				fd.observe(lat, float64(j) < errFrac*10)
			}
			now = now.Add(time.Second)
			eng.Tick(now)
		}
	}
	// Healthy traffic: nothing fires.
	tick(30, 200*time.Microsecond, 0)
	if alerts := eng.Alerts(); len(alerts) != 0 {
		t.Fatalf("healthy traffic fired alerts: %+v", alerts)
	}
	// 30% errors for 30 s: burn 300× the 0.1% budget → page.
	tick(30, 200*time.Microsecond, 0.3)
	alerts := eng.Alerts()
	if len(alerts) == 0 {
		t.Fatal("error storm fired no alert")
	}
	found := false
	for _, a := range alerts {
		if a.Key == "slo:check-availability" && a.Severity == "page" {
			found = true
			if a.Since.IsZero() {
				t.Error("alert has zero Since")
			}
		}
	}
	if !found {
		t.Fatalf("availability page missing: %+v", alerts)
	}
	firstSince := alerts[0].Since
	// Still erroring: Since must not reset.
	tick(5, 200*time.Microsecond, 0.3)
	for _, a := range eng.Alerts() {
		if a.Key == "slo:check-availability" && !a.Since.Equal(firstSince) {
			t.Errorf("Since reset from %v to %v while still firing", firstSince, a.Since)
		}
	}
	// Slow traffic breaches the latency SLO too.
	tick(30, 20*time.Millisecond, 0)
	latFiring := false
	for _, st := range eng.SLOStatuses() {
		if st.SLO.Name == "check-latency" && st.Firing != "" {
			latFiring = true
			if st.BudgetRemaining != 0 {
				t.Errorf("latency SLO fully burning but budget remaining %.2f", st.BudgetRemaining)
			}
		}
	}
	if !latFiring {
		t.Errorf("latency SLO not firing after slow phase: %+v", eng.SLOStatuses())
	}
	// Long healthy recovery: the short windows age the incident out.
	tick(600, 200*time.Microsecond, 0)
	for _, a := range eng.Alerts() {
		t.Errorf("alert still firing after recovery: %+v", a)
	}
}

func TestExternalAlertsAndSinceStability(t *testing.T) {
	eng := telemetry.New(telemetry.Config{})
	t0 := time.Unix(1_700_000_000, 0)
	eng.SetAlert(telemetry.Alert{Key: "drift:abc/Valve", Severity: "page", Since: t0, Message: "DRIFT", Counterexample: []string{"open", "open"}})
	eng.SetAlert(telemetry.Alert{Key: "drift:abc/Valve", Severity: "page", Since: t0.Add(time.Minute), Message: "DRIFT again"})
	alerts := eng.Alerts()
	if len(alerts) != 1 || !alerts[0].Since.Equal(t0) {
		t.Fatalf("Since not preserved across re-set: %+v", alerts)
	}
	if alerts[0].Message != "DRIFT again" {
		t.Errorf("message not refreshed: %q", alerts[0].Message)
	}
	eng.ClearAlert("drift:abc/Valve")
	if len(eng.Alerts()) != 0 {
		t.Error("alert survived ClearAlert")
	}
}

func TestExemplarRingBoundAndOrder(t *testing.T) {
	eng := telemetry.New(telemetry.Config{Exemplars: 4})
	for i := 0; i < 10; i++ {
		eng.AddExemplar(telemetry.Exemplar{TraceID: fmt.Sprintf("t%d", i), Code: 500})
	}
	got := eng.Exemplars()
	if len(got) != 4 {
		t.Fatalf("ring holds %d, want 4", len(got))
	}
	for i, want := range []string{"t9", "t8", "t7", "t6"} {
		if got[i].TraceID != want {
			t.Errorf("exemplar[%d] = %s, want %s (newest first)", i, got[i].TraceID, want)
		}
	}
}

func TestEngineBeforeFirstTick(t *testing.T) {
	eng := telemetry.New(telemetry.Config{})
	if _, ok := eng.Endpoint("check", time.Minute); ok {
		t.Error("Endpoint answered before any tick")
	}
	if eng.Endpoints() != nil {
		t.Error("Endpoints non-nil before any tick")
	}
	if _, ok := eng.Value("x"); ok {
		t.Error("Value answered before any tick")
	}
	if len(eng.SLOStatuses()) != 0 {
		t.Error("SLO statuses before any tick")
	}
}

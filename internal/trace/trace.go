// Package trace implements the paper's trace semantics (Fig. 4) as an
// executable decision procedure and a bounded enumerator.
//
// The judgment s ⊢ l ∈ p states that program p can output the trace l —
// a sequence of call labels — ending in status s, where s is either
// Ongoing (the paper's 0: the computation may be sequenced further) or
// Returned (the paper's R: a `return` was executed, so nothing may
// follow). The semantics is nondeterministic: conditions are erased, so
// both branches of `if` contribute traces, and a loop contributes any
// number of iterations of its body.
//
// This package is the ground truth against which the behavior inference
// (internal/core) is tested: Theorems 1 and 2 of the paper state that the
// inferred regular expression denotes exactly L(p) = { l | s ⊢ l ∈ p }.
package trace

import (
	"sort"
	"strings"

	"github.com/shelley-go/shelley/internal/ir"
)

// Status is the derivation status of a trace.
type Status int

const (
	// Ongoing is the paper's status 0: no return executed yet; the trace
	// can be extended by sequencing.
	Ongoing Status = iota + 1

	// Returned is the paper's status R: a return was executed; the trace
	// is complete and nothing can follow it.
	Returned
)

// String returns the paper's notation for the status.
func (s Status) String() string {
	switch s {
	case Ongoing:
		return "0"
	case Returned:
		return "R"
	default:
		return "?"
	}
}

// In decides the judgment s ⊢ l ∈ p by structural recursion over the
// derivation rules of Fig. 4. It terminates because every recursive call
// either descends into a strict subprogram or (rule LOOP-3) keeps the
// program but strictly shortens the trace.
func In(s Status, l []string, p ir.Program) bool {
	switch p := p.(type) {
	case ir.Call:
		// Rule CALL: 0 ⊢ [f] ∈ f().
		return s == Ongoing && len(l) == 1 && l[0] == p.Label
	case ir.Skip:
		// Rule SKIP: 0 ⊢ [] ∈ skip.
		return s == Ongoing && len(l) == 0
	case ir.Return:
		// Rule RETURN: R ⊢ [] ∈ return.
		return s == Returned && len(l) == 0
	case ir.Seq:
		// Rule SEQ-1: an early return of p1 short-circuits p2.
		if s == Returned && In(Returned, l, p.First) {
			return true
		}
		// Rule SEQ-2: l = l1·l2 with 0 ⊢ l1 ∈ p1 and s ⊢ l2 ∈ p2.
		for i := 0; i <= len(l); i++ {
			if In(Ongoing, l[:i], p.First) && In(s, l[i:], p.Second) {
				return true
			}
		}
		return false
	case ir.If:
		// Rules IF-1 and IF-2.
		return In(s, l, p.Then) || In(s, l, p.Else)
	case ir.Loop:
		// Rule LOOP-1: the loop may run zero iterations.
		if s == Ongoing && len(l) == 0 {
			return true
		}
		// Rule LOOP-2: the body returns during some iteration; the whole
		// remaining trace is one body execution that returned.
		if s == Returned && In(Returned, l, p.Body) {
			return true
		}
		// Rule LOOP-3: a non-empty completed iteration l1 followed by the
		// rest of the loop. Restricting to non-empty l1 loses nothing:
		// an empty completed iteration leaves both the trace and the
		// judgment unchanged.
		for i := 1; i <= len(l); i++ {
			if In(Ongoing, l[:i], p.Body) && In(s, l[i:], p) {
				return true
			}
		}
		return false
	}
	return false
}

// InLanguage decides l ∈ L(p), i.e. whether the trace is derivable under
// either status (Definition 1 of the paper).
func InLanguage(l []string, p ir.Program) bool {
	return In(Ongoing, l, p) || In(Returned, l, p)
}

// Entry is one enumerated trace together with the status of its
// derivation.
type Entry struct {
	Status Status
	Trace  []string
}

// Enumerate returns every derivable (status, trace) pair with trace
// length at most maxLen, in shortlex order with Ongoing before Returned
// at equal traces. A pair appears once even if several derivations
// produce it.
func Enumerate(p ir.Program, maxLen int) []Entry {
	sets := enumerate(p, maxLen)
	var out []Entry
	for _, t := range sets.ongoing.slice() {
		out = append(out, Entry{Status: Ongoing, Trace: t})
	}
	for _, t := range sets.returned.slice() {
		out = append(out, Entry{Status: Returned, Trace: t})
	}
	sort.Slice(out, func(i, j int) bool {
		if c := compareTraces(out[i].Trace, out[j].Trace); c != 0 {
			return c < 0
		}
		return out[i].Status < out[j].Status
	})
	return out
}

// Language returns every trace of L(p) with length at most maxLen, in
// shortlex order, with duplicates (same trace under both statuses)
// removed. This realizes Definition 1 up to the length bound.
func Language(p ir.Program, maxLen int) [][]string {
	sets := enumerate(p, maxLen)
	merged := newTraceSet()
	merged.addAll(sets.ongoing)
	merged.addAll(sets.returned)
	out := merged.slice()
	sort.Slice(out, func(i, j int) bool { return compareTraces(out[i], out[j]) < 0 })
	return out
}

// statusSets carries the two trace sets of a subprogram: the ongoing
// traces (status 0) and the returned traces (status R).
type statusSets struct {
	ongoing  *traceSet
	returned *traceSet
}

func enumerate(p ir.Program, maxLen int) statusSets {
	switch p := p.(type) {
	case ir.Call:
		s := statusSets{ongoing: newTraceSet(), returned: newTraceSet()}
		if maxLen >= 1 {
			s.ongoing.add([]string{p.Label})
		}
		return s
	case ir.Skip:
		s := statusSets{ongoing: newTraceSet(), returned: newTraceSet()}
		s.ongoing.add(nil)
		return s
	case ir.Return:
		s := statusSets{ongoing: newTraceSet(), returned: newTraceSet()}
		s.returned.add(nil)
		return s
	case ir.Seq:
		first := enumerate(p.First, maxLen)
		second := enumerate(p.Second, maxLen)
		out := statusSets{ongoing: newTraceSet(), returned: newTraceSet()}
		// SEQ-1: early returns of p1.
		out.returned.addAll(first.returned)
		// SEQ-2: completed p1 prefixes followed by p2 traces.
		for _, l1 := range first.ongoing.slice() {
			for _, l2 := range second.ongoing.slice() {
				out.ongoing.addBounded(concatTrace(l1, l2), maxLen)
			}
			for _, l2 := range second.returned.slice() {
				out.returned.addBounded(concatTrace(l1, l2), maxLen)
			}
		}
		return out
	case ir.If:
		a := enumerate(p.Then, maxLen)
		b := enumerate(p.Else, maxLen)
		out := statusSets{ongoing: newTraceSet(), returned: newTraceSet()}
		out.ongoing.addAll(a.ongoing)
		out.ongoing.addAll(b.ongoing)
		out.returned.addAll(a.returned)
		out.returned.addAll(b.returned)
		return out
	case ir.Loop:
		body := enumerate(p.Body, maxLen)
		out := statusSets{ongoing: newTraceSet(), returned: newTraceSet()}
		// LOOP-1: zero iterations.
		out.ongoing.add(nil)
		// LOOP-2: the body returns in the first iteration.
		out.returned.addAll(body.returned)
		// LOOP-3: iterate to a fixpoint, prepending completed body
		// iterations. The length bound guarantees termination.
		for changed := true; changed; {
			changed = false
			for _, l1 := range body.ongoing.slice() {
				if len(l1) == 0 {
					continue // empty iterations add nothing
				}
				for _, l2 := range out.ongoing.slice() {
					if out.ongoing.addBounded(concatTrace(l1, l2), maxLen) {
						changed = true
					}
				}
				for _, l2 := range out.returned.slice() {
					if out.returned.addBounded(concatTrace(l1, l2), maxLen) {
						changed = true
					}
				}
			}
		}
		return out
	}
	return statusSets{ongoing: newTraceSet(), returned: newTraceSet()}
}

// traceSet is a deduplicating set of traces.
type traceSet struct {
	keys   map[string]struct{}
	traces [][]string
}

func newTraceSet() *traceSet {
	return &traceSet{keys: make(map[string]struct{})}
}

func (s *traceSet) add(t []string) bool {
	k := traceKey(t)
	if _, dup := s.keys[k]; dup {
		return false
	}
	s.keys[k] = struct{}{}
	s.traces = append(s.traces, append([]string(nil), t...))
	return true
}

func (s *traceSet) addBounded(t []string, maxLen int) bool {
	if len(t) > maxLen {
		return false
	}
	return s.add(t)
}

func (s *traceSet) addAll(other *traceSet) {
	for _, t := range other.traces {
		s.add(t)
	}
}

// slice returns the traces in insertion order. Callers must not mutate
// the returned traces.
func (s *traceSet) slice() [][]string { return s.traces }

func traceKey(t []string) string {
	// A single pre-sized Builder keeps the key one allocation; the naive
	// k += f + "\x00" loop is O(n²) bytes copied on long traces and
	// dominated Enumerate/addBounded profiles.
	n := len(t)
	for _, f := range t {
		n += len(f)
	}
	var b strings.Builder
	b.Grow(n)
	for _, f := range t {
		b.WriteString(f)
		b.WriteByte(0)
	}
	return b.String()
}

func concatTrace(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	return append(out, b...)
}

func compareTraces(a, b []string) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

package trace

import (
	"math/rand"
	"testing"

	"github.com/shelley-go/shelley/internal/ir"
)

// paperExample is the program of Examples 1–3:
// loop(★){ a(); if(★){ b(); return } else { c() } }
func paperExample() ir.Program {
	return ir.NewLoop(ir.NewSeq(
		ir.NewCall("a"),
		ir.NewIf(
			ir.NewSeq(ir.NewCall("b"), ir.NewReturn()),
			ir.NewCall("c"),
		),
	))
}

func TestAxioms(t *testing.T) {
	tests := []struct {
		name string
		s    Status
		l    []string
		p    ir.Program
		want bool
	}{
		{"CALL", Ongoing, []string{"f"}, ir.NewCall("f"), true},
		{"CALL wrong status", Returned, []string{"f"}, ir.NewCall("f"), false},
		{"CALL wrong label", Ongoing, []string{"g"}, ir.NewCall("f"), false},
		{"CALL empty trace", Ongoing, nil, ir.NewCall("f"), false},
		{"SKIP", Ongoing, nil, ir.NewSkip(), true},
		{"SKIP wrong status", Returned, nil, ir.NewSkip(), false},
		{"SKIP nonempty", Ongoing, []string{"f"}, ir.NewSkip(), false},
		{"RETURN", Returned, nil, ir.NewReturn(), true},
		{"RETURN wrong status", Ongoing, nil, ir.NewReturn(), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := In(tt.s, tt.l, tt.p); got != tt.want {
				t.Errorf("In(%v, %v, %v) = %v, want %v", tt.s, tt.l, tt.p, got, tt.want)
			}
		})
	}
}

func TestSeqRules(t *testing.T) {
	ab := ir.NewSeq(ir.NewCall("a"), ir.NewCall("b"))
	if !In(Ongoing, []string{"a", "b"}, ab) {
		t.Error("SEQ-2: [a b] should be in a();b()")
	}
	if In(Ongoing, []string{"a"}, ab) {
		t.Error("[a] should not be ongoing in a();b()")
	}
	// Early return short-circuits the continuation (SEQ-1).
	earlyRet := ir.NewSeq(ir.NewCall("a"), ir.NewReturn(), ir.NewCall("b"))
	if !In(Returned, []string{"a"}, earlyRet) {
		t.Error("SEQ-1: [a] should be returned in a();return;b()")
	}
	if In(Ongoing, []string{"a", "b"}, earlyRet) || In(Returned, []string{"a", "b"}, earlyRet) {
		t.Error("b() after return must be unreachable")
	}
}

func TestIfRules(t *testing.T) {
	p := ir.NewIf(ir.NewCall("a"), ir.NewCall("b"))
	if !In(Ongoing, []string{"a"}, p) || !In(Ongoing, []string{"b"}, p) {
		t.Error("both branches should contribute traces")
	}
	if In(Ongoing, []string{"a", "b"}, p) {
		t.Error("branches do not sequence")
	}
	mixed := ir.NewIf(ir.NewReturn(), ir.NewCall("b"))
	if !In(Returned, nil, mixed) {
		t.Error("then-branch return should be derivable")
	}
	if !In(Ongoing, []string{"b"}, mixed) {
		t.Error("else-branch should be derivable ongoing")
	}
}

func TestLoopRules(t *testing.T) {
	p := ir.NewLoop(ir.NewCall("a"))
	for _, tt := range []struct {
		l    []string
		want bool
	}{
		{nil, true},
		{[]string{"a"}, true},
		{[]string{"a", "a", "a"}, true},
		{[]string{"b"}, false},
	} {
		if got := In(Ongoing, tt.l, p); got != tt.want {
			t.Errorf("In(0, %v, loop{a()}) = %v, want %v", tt.l, got, tt.want)
		}
	}
	// The loop itself never returns unless its body does.
	if In(Returned, nil, p) {
		t.Error("loop{a()} has no returned traces")
	}
}

func TestLoopWithSkipBodyTerminates(t *testing.T) {
	// Regression guard: LOOP-3 with an empty completed iteration must not
	// cause infinite recursion in the decision procedure.
	p := ir.NewLoop(ir.NewSkip())
	if !In(Ongoing, nil, p) {
		t.Error("loop{skip} should accept the empty trace ongoing")
	}
	if In(Ongoing, []string{"a"}, p) {
		t.Error("loop{skip} should reject non-empty traces")
	}
	if In(Returned, nil, p) {
		t.Error("loop{skip} never returns")
	}
}

func TestPaperExample1(t *testing.T) {
	// 0 ⊢ [a, c, a, c] ∈ loop(★){a(); if(★){b(); return} else {c()}}
	if !In(Ongoing, []string{"a", "c", "a", "c"}, paperExample()) {
		t.Error("Example 1 of the paper should hold")
	}
}

func TestPaperExample2(t *testing.T) {
	// R ⊢ [a, c, a, b] ∈ loop(★){a(); if(★){b(); return} else {c()}}
	if !In(Returned, []string{"a", "c", "a", "b"}, paperExample()) {
		t.Error("Example 2 of the paper should hold")
	}
	// And the statuses are not interchangeable.
	if In(Returned, []string{"a", "c", "a", "c"}, paperExample()) {
		t.Error("[a c a c] must not be derivable as returned")
	}
	if In(Ongoing, []string{"a", "c", "a", "b"}, paperExample()) {
		t.Error("[a c a b] must not be derivable as ongoing: b is followed by return")
	}
}

func TestInLanguage(t *testing.T) {
	p := paperExample()
	for _, l := range [][]string{nil, {"a", "b"}, {"a", "c"}, {"a", "c", "a", "b"}} {
		if !InLanguage(l, p) {
			t.Errorf("%v should be in L(p)", l)
		}
	}
	for _, l := range [][]string{{"b"}, {"c"}, {"a", "b", "a"}, {"a", "a"}} {
		if InLanguage(l, p) {
			t.Errorf("%v should not be in L(p)", l)
		}
	}
}

func TestEnumerateMatchesIn(t *testing.T) {
	// Enumerate must agree with the decision procedure on every trace up
	// to the bound, for a corpus of interesting programs.
	programs := []ir.Program{
		paperExample(),
		ir.NewSkip(),
		ir.NewReturn(),
		ir.NewCall("a"),
		ir.NewSeq(ir.NewCall("a"), ir.NewReturn(), ir.NewCall("b")),
		ir.NewLoop(ir.NewSkip()),
		ir.NewLoop(ir.NewReturn()),
		ir.NewLoop(ir.NewIf(ir.NewCall("a"), ir.NewReturn())),
		ir.NewIf(ir.NewLoop(ir.NewCall("a")), ir.NewSeq(ir.NewCall("b"), ir.NewReturn())),
		ir.NewSeq(ir.NewLoop(ir.NewCall("a")), ir.NewCall("b")),
	}
	const maxLen = 4
	for _, p := range programs {
		assertEnumerateAgreesWithIn(t, p, maxLen)
	}
}

func TestEnumerateMatchesInRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const maxLen = 3
	for i := 0; i < 300; i++ {
		p := ir.Random(rng, ir.GeneratorConfig{MaxDepth: 3, Labels: []string{"a", "b"}})
		assertEnumerateAgreesWithIn(t, p, maxLen)
		if t.Failed() {
			t.Fatalf("failing program: %v", p)
		}
	}
}

func assertEnumerateAgreesWithIn(t *testing.T, p ir.Program, maxLen int) {
	t.Helper()
	enum := Enumerate(p, maxLen)
	inEnum := make(map[string]map[Status]bool)
	for _, e := range enum {
		k := traceKey(e.Trace)
		if inEnum[k] == nil {
			inEnum[k] = make(map[Status]bool)
		}
		inEnum[k][e.Status] = true
		if !In(e.Status, e.Trace, p) {
			t.Errorf("enumerated %v ⊢ %v not derivable for %v", e.Status, e.Trace, p)
		}
	}
	for _, l := range allTraces([]string{"a", "b", "c"}, min(maxLen, 3)) {
		for _, s := range []Status{Ongoing, Returned} {
			want := In(s, l, p)
			got := inEnum[traceKey(l)][s]
			if got != want {
				t.Errorf("program %v: enumeration disagrees with In(%v, %v): enum=%v in=%v",
					p, s, l, got, want)
			}
		}
	}
}

func TestLanguageDeduplicatesAndSorts(t *testing.T) {
	// A program where the same trace arises both ongoing and returned.
	p := ir.NewIf(ir.NewSeq(ir.NewCall("a"), ir.NewReturn()), ir.NewCall("a"))
	got := Language(p, 3)
	if len(got) != 1 || len(got[0]) != 1 || got[0][0] != "a" {
		t.Fatalf("Language = %v, want [[a]]", got)
	}

	sorted := Language(paperExample(), 3)
	for i := 1; i < len(sorted); i++ {
		if compareTraces(sorted[i-1], sorted[i]) >= 0 {
			t.Fatalf("Language not in shortlex order: %v", sorted)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Ongoing.String() != "0" || Returned.String() != "R" {
		t.Error("Status.String should use the paper's notation")
	}
	if Status(99).String() != "?" {
		t.Error("unknown status should print ?")
	}
}

func TestEnumerateRespectsBound(t *testing.T) {
	p := ir.NewLoop(ir.NewCall("a"))
	for _, e := range Enumerate(p, 5) {
		if len(e.Trace) > 5 {
			t.Fatalf("trace %v exceeds bound", e.Trace)
		}
	}
	if got := len(Language(p, 5)); got != 6 { // ε, a, aa, ..., aaaaa
		t.Errorf("Language(loop{a()}, 5) has %d traces, want 6", got)
	}
}

func allTraces(alphabet []string, maxLen int) [][]string {
	out := [][]string{nil}
	frontier := [][]string{nil}
	for i := 0; i < maxLen; i++ {
		var next [][]string
		for _, tr := range frontier {
			for _, f := range alphabet {
				ext := append(append([]string{}, tr...), f)
				next = append(next, ext)
			}
		}
		out = append(out, next...)
		frontier = next
	}
	return out
}

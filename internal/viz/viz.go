// Package viz renders Shelley models as Graphviz DOT documents,
// reproducing the diagrams of the paper: the class protocol diagram of
// Fig. 1 (operations as nodes, allowed successions as edges, initial
// operations marked by an entry arrow and final operations drawn with a
// double border), the composite diagram of Fig. 2, and the method
// dependency graph of Fig. 3 (entry and exit nodes).
//
// Output is fully deterministic: nodes are emitted in declaration order
// and edges in sorted order, so diagrams are diffable across runs.
package viz

import (
	"fmt"
	"sort"
	"strings"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/depgraph"
	"github.com/shelley-go/shelley/internal/model"
)

// ProtocolDOT renders the class usage-protocol diagram (Figs. 1 and 2).
func ProtocolDOT(c *model.Class) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", c.Name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontname=\"Helvetica\"];\n")
	b.WriteString("  __start [shape=point, label=\"\"];\n")

	for _, op := range c.Operations {
		shape := "circle"
		if op.Final {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", op.Name, shape)
	}
	for _, op := range c.Operations {
		if op.Initial {
			fmt.Fprintf(&b, "  __start -> %q;\n", op.Name)
		}
	}
	edges := c.ProtocolEdges()
	for _, op := range c.Operations {
		for _, next := range edges[op.Name] {
			fmt.Fprintf(&b, "  %q -> %q;\n", op.Name, next)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DepGraphDOT renders the §3.1 method dependency graph (Fig. 3): entry
// nodes as boxes, exit nodes as ellipses labelled with their return
// sets.
func DepGraphDOT(name string, c *model.Class, g *depgraph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")

	for id := 0; id < g.NumNodes(); id++ {
		n := g.Node(id)
		switch n.Kind {
		case depgraph.Entry:
			fmt.Fprintf(&b, "  n%d [shape=box, label=%q];\n", id, n.Method)
		case depgraph.Exit:
			// The label already carries DOT-escaped inner quotes, so it
			// is emitted verbatim rather than through %q.
			fmt.Fprintf(&b, "  n%d [shape=ellipse, label=\"%s\"];\n", id, exitLabel(c, n))
		}
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	return b.String()
}

func exitLabel(c *model.Class, n depgraph.Node) string {
	op := c.Operation(n.Method)
	if op == nil || n.ExitID >= len(op.Method.Exits) {
		return n.Label()
	}
	next := op.Method.Exits[n.ExitID].Next
	if len(next) == 0 {
		return "return []"
	}
	return "return [" + strings.Join(quoteAll(next), ", ") + "]"
}

func quoteAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = `\"` + s + `\"`
	}
	return out
}

// DFADOT renders any DFA, for debugging checkers and the L* learner's
// output.
func DFADOT(name string, d *automata.DFA) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=circle, fontname=\"Helvetica\"];\n")
	b.WriteString("  __start [shape=point, label=\"\"];\n")
	for s := 0; s < d.NumStates(); s++ {
		shape := "circle"
		if d.Accepting(s) {
			shape = "doublecircle"
		}
		fmt.Fprintf(&b, "  s%d [shape=%s, label=\"%d\"];\n", s, shape, s)
	}
	fmt.Fprintf(&b, "  __start -> s%d;\n", d.Start())
	for s := 0; s < d.NumStates(); s++ {
		// Group parallel edges into one arrow with a comma label.
		bySymTarget := make(map[int][]string)
		for _, sym := range d.Alphabet() {
			if t := d.Target(s, sym); t >= 0 {
				bySymTarget[t] = append(bySymTarget[t], sym)
			}
		}
		targets := make([]int, 0, len(bySymTarget))
		for t := range bySymTarget {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", s, t, strings.Join(bySymTarget[t], ", "))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

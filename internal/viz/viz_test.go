package viz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pyparse"
	"github.com/shelley-go/shelley/internal/regex"
)

func classFrom(t *testing.T, file, name string) *model.Class {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", file))
	if err != nil {
		t.Fatal(err)
	}
	ast, err := pyparse.ParseClass(string(b), name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := model.FromAST(ast)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFig1ValveDOT regenerates the Valve diagram of Fig. 1: nodes for
// test/open/close/clean, the entry arrow into test, double circles on
// the final operations, and exactly the five protocol edges the figure
// draws.
func TestFig1ValveDOT(t *testing.T) {
	dot := ProtocolDOT(classFrom(t, "valve.py", "Valve"))
	for _, want := range []string{
		`digraph "Valve" {`,
		`"test" [shape=circle];`,
		`"open" [shape=circle];`,
		`"close" [shape=doublecircle];`,
		`"clean" [shape=doublecircle];`,
		`__start -> "test";`,
		`"test" -> "open";`,
		`"test" -> "clean";`,
		`"open" -> "close";`,
		`"close" -> "test";`,
		`"clean" -> "test";`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Fig. 1 DOT missing %q:\n%s", want, dot)
		}
	}
	// Exactly one entry arrow and five protocol edges.
	if got := strings.Count(dot, "__start ->"); got != 1 {
		t.Errorf("entry arrows = %d", got)
	}
	if got := strings.Count(dot, `" -> "`); got != 5 {
		t.Errorf("protocol edges = %d, want 5", got)
	}
}

// TestFig2BadSectorDOT regenerates the BadSector composite diagram:
// open_a is both initial and final (double circle with entry arrow),
// matching the invalid-usage situation the figure depicts.
func TestFig2BadSectorDOT(t *testing.T) {
	dot := ProtocolDOT(classFrom(t, "badsector.py", "BadSector"))
	for _, want := range []string{
		`"open_a" [shape=doublecircle];`,
		`"open_b" [shape=doublecircle];`,
		`__start -> "open_a";`,
		`"open_a" -> "open_b";`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Fig. 2 DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, `__start -> "open_b"`) {
		t.Error("open_b is not initial")
	}
}

// TestFig3SectorDepGraphDOT regenerates the dependency-graph rendering
// of Fig. 3: box entry nodes, ellipse exit nodes labelled with their
// return sets.
func TestFig3SectorDepGraphDOT(t *testing.T) {
	c := classFrom(t, "sector.py", "Sector")
	g, err := c.DepGraph()
	if err != nil {
		t.Fatal(err)
	}
	dot := DepGraphDOT("Sector", c, g)
	for _, want := range []string{
		`[shape=box, label="open_a"];`,
		`[shape=box, label="clean_a"];`,
		`[shape=box, label="close_a"];`,
		`[shape=box, label="open_b"];`,
		`label="return [\"close_a\", \"open_b\"]"`,
		`label="return [\"clean_a\"]"`,
		`label="return []"`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("Fig. 3 DOT missing %q:\n%s", want, dot)
		}
	}
	// 10 nodes and 11 arcs.
	if got := strings.Count(dot, "shape=box"); got != 4 {
		t.Errorf("entry boxes = %d", got)
	}
	if got := strings.Count(dot, "shape=ellipse"); got != 6 {
		t.Errorf("exit ellipses = %d", got)
	}
	if got := strings.Count(dot, " -> "); got != 11 {
		t.Errorf("arcs = %d, want 11", got)
	}
}

func TestDFADOT(t *testing.T) {
	d := automata.CompileMinimal(regex.MustParse("(a . b)*"))
	dot := DFADOT("ab", d)
	for _, want := range []string{
		`digraph "ab" {`,
		"__start -> s0;",
		"doublecircle",
		`[label="a"];`,
		`[label="b"];`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DFA DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestDOTDeterministic(t *testing.T) {
	c := classFrom(t, "badsector.py", "BadSector")
	first := ProtocolDOT(c)
	for i := 0; i < 5; i++ {
		if ProtocolDOT(c) != first {
			t.Fatal("ProtocolDOT output is not deterministic")
		}
	}
	g, err := c.DepGraph()
	if err != nil {
		t.Fatal(err)
	}
	firstDep := DepGraphDOT("BadSector", c, g)
	for i := 0; i < 5; i++ {
		if DepGraphDOT("BadSector", c, g) != firstDep {
			t.Fatal("DepGraphDOT output is not deterministic")
		}
	}
}

package shelley

import (
	"errors"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadReaderMatchesLoadSource: the streaming entry point and the
// string entry point must produce identical modules — LoadSource is
// LoadReader over a strings.Reader.
func TestLoadReaderMatchesLoadSource(t *testing.T) {
	src := `@sys
class Dev:
    @op_initial_final
    def ping(self):
        return ["ping"]
`
	fromReader, err := LoadReader("request-42", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	fromString, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fromReader.Names(), fromString.Names(); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("classes %v vs %v", got, want)
	}
	r1, err := fromReader.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fromString.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i].String() != r2[i].String() {
			t.Errorf("report %d differs", i)
		}
	}
}

// TestLoadReaderLabelsErrors: the name labels parse failures; an empty
// name leaves the historical LoadSource error shape intact.
func TestLoadReaderLabelsErrors(t *testing.T) {
	bad := "@sys\nclass X:\n  def"
	_, err := LoadReader("upload.py", strings.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "upload.py") {
		t.Errorf("labeled error = %v, want mention of upload.py", err)
	}
	_, err = LoadSource(bad)
	if err == nil || strings.Contains(err.Error(), "upload.py") {
		t.Errorf("unlabeled error = %v", err)
	}
	if !strings.HasPrefix(err.Error(), "shelley: ") {
		t.Errorf("error prefix changed: %v", err)
	}
}

// errReader fails after a prefix, exercising the read-error path.
type errReader struct{ n int }

func (e *errReader) Read(p []byte) (int, error) {
	if e.n == 0 {
		return 0, errors.New("stream torn down")
	}
	e.n--
	p[0] = 'x'
	return 1, nil
}

func TestLoadReaderReadFailure(t *testing.T) {
	_, err := LoadReader("conn", &errReader{n: 3})
	if err == nil || !strings.Contains(err.Error(), "stream torn down") || !strings.Contains(err.Error(), "conn") {
		t.Errorf("err = %v", err)
	}
}

// TestLoadFileDelegates: LoadFile now flows through LoadReader and
// still loads the paper sources, labeling errors with the path.
func TestLoadFileDelegates(t *testing.T) {
	m, err := LoadFile(filepath.Join("testdata", "valve.py"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Class("Valve"); !ok {
		t.Error("Valve missing")
	}
	if _, err := LoadFile(filepath.Join("testdata", "nope.py")); err == nil {
		t.Error("missing file must fail")
	}
}

var _ io.Reader = (*errReader)(nil)

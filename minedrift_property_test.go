package shelley

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/mine"
)

// Property tests of the trace-mining subsystem against the static
// pipeline, over randomly generated classes: a corpus sampled from the
// statically inferred DFA must never produce a DRIFT verdict (mining
// infers at most the observed sub-language of the spec), and one
// injected off-model trace must flip the verdict with a counterexample
// the static model rejects. Runs under -race in CI.
func TestMiningSampledCorpusNeverDrifts(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	ctx := budget.With(context.Background(), budget.Default())

	for i := 0; i < 20; i++ {
		src := randBaseClass(rng, "Dev", 2+rng.Intn(3))
		m, err := LoadSource(src)
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, src)
		}
		dev, _ := m.Class("Dev")
		spec, err := dev.SpecDFA("")
		if err != nil {
			t.Fatal(err)
		}
		resolve := func(string) (*automata.DFA, bool) { return spec, true }

		miner := mine.NewMiner(mine.Config{})
		classFP := fmt.Sprintf("case%d/Dev", i)
		sampled := 0
		for k := 0; k < 48; k++ {
			tr, ok := spec.RandomAccepted(rng, 10)
			if !ok {
				break
			}
			out := miner.Ingest(mine.Event{
				ClassFP: classFP,
				Device:  fmt.Sprintf("dev-%d", k%8),
				Events:  tr,
				Status:  "ok",
			})
			if out.Accepted {
				sampled++
			}
		}
		if sampled == 0 {
			continue // spec accepts nothing within the length bound
		}
		st := miner.MineRound(ctx, resolve)
		if st.Errors != 0 || st.Mined != 1 {
			t.Fatalf("case %d: round stats %+v\n%s", i, st, src)
		}
		r := miner.Reports()[0]
		if r.Verdict == mine.VerdictDrift {
			t.Fatalf("case %d: conforming corpus drifted, counterexample %v\n%s", i, r.Counterexample, src)
		}
		if r.Verdict != mine.VerdictConformant && r.Verdict != mine.VerdictUnder {
			t.Fatalf("case %d: unexpected verdict %q (%+v)\n%s", i, r.Verdict, r, src)
		}

		// Inject a single off-model trace: the shortest non-empty trace
		// the spec rejects (over the spec's own alphabet).
		var drifting []string
		for _, cand := range spec.Complement().EnumerateAccepted(4) {
			if len(cand) > 0 {
				drifting = append([]string(nil), cand...)
				break
			}
		}
		if drifting == nil {
			continue // spec accepts every short trace; nothing to inject
		}
		out := miner.Ingest(mine.Event{ClassFP: classFP, Device: "rogue", Events: drifting, Status: "ok"})
		if !out.Accepted {
			t.Fatalf("case %d: drifting trace shed: %+v", i, out)
		}
		if st := miner.MineRound(ctx, resolve); st.Errors != 0 {
			t.Fatalf("case %d: drift round stats %+v", i, st)
		}
		r = miner.Reports()[0]
		if r.Verdict != mine.VerdictDrift {
			t.Fatalf("case %d: injected off-model trace %v did not flip verdict (got %q)\n%s",
				i, drifting, r.Verdict, src)
		}
		if len(r.Counterexample) == 0 {
			t.Fatalf("case %d: DRIFT without counterexample", i)
		}
		if spec.Accepts(r.Counterexample) {
			t.Fatalf("case %d: counterexample %v conforms to the spec", i, r.Counterexample)
		}
		if len(r.Counterexample) > len(drifting) {
			t.Fatalf("case %d: counterexample %v not minimal (injected %v)", i, r.Counterexample, drifting)
		}
	}
}

package shelley

import (
	"context"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/obs"
)

// tracedContext returns a context carrying a fresh deterministic tracer
// whose spans land in the returned ring.
func tracedContext(t *testing.T) (context.Context, *obs.Ring) {
	t.Helper()
	ring := obs.NewRing(1 << 12)
	tr := obs.New(obs.WithExporter(ring), obs.WithDeterministicIDs())
	return obs.ContextWithTracer(context.Background(), tr), ring
}

// spanIndex builds lookup maps over a snapshot: spans by ID and the set
// of distinct trace IDs.
func spanIndex(spans []obs.SpanData) (byID map[string]obs.SpanData, traces map[string]bool) {
	byID = make(map[string]obs.SpanData, len(spans))
	traces = make(map[string]bool)
	for _, s := range spans {
		byID[s.SpanID] = s
		traces[s.TraceID] = true
	}
	return byID, traces
}

// nearestAncestor walks the parent chain from s until it hits a span
// named name, returning its SpanID ("" when the chain ends first).
func nearestAncestor(byID map[string]obs.SpanData, s obs.SpanData, name string) string {
	for cur := s; cur.ParentID != ""; {
		parent, ok := byID[cur.ParentID]
		if !ok {
			return ""
		}
		if parent.Name == name {
			return parent.SpanID
		}
		cur = parent
	}
	return ""
}

func attr(s obs.SpanData, key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestCheckContextSpanTree pins the shape of one class's trace: a
// single check.class root, every pipeline stage parented (transitively)
// under it, and no span dangling outside the tree.
func TestCheckContextSpanTree(t *testing.T) {
	m := loadPaper(t)
	ctx, ring := tracedContext(t)
	c, ok := m.Class("GoodSector")
	if !ok {
		t.Fatalf("class GoodSector not found in %v", m.Names())
	}
	if _, err := c.CheckContext(ctx); err != nil {
		t.Fatal(err)
	}

	spans := ring.Snapshot()
	byID, traces := spanIndex(spans)
	if len(traces) != 1 {
		t.Fatalf("one CheckContext produced %d traces, want 1", len(traces))
	}

	var root obs.SpanData
	for _, s := range spans {
		if s.Name == "check.class" {
			root = s
		}
	}
	if root.SpanID == "" {
		t.Fatal("no check.class span recorded")
	}
	if root.ParentID != "" {
		t.Errorf("check.class has parent %q, want a root span", root.ParentID)
	}
	if got := attr(root, "class"); got != "GoodSector" {
		t.Errorf("check.class class attr = %q, want GoodSector", got)
	}

	stages := make(map[string]bool)
	for _, s := range spans {
		if s.SpanID == root.SpanID {
			continue
		}
		if nearestAncestor(byID, s, "check.class") != root.SpanID {
			t.Errorf("span %s (%s) does not nest under check.class", s.Name, s.SpanID)
		}
		if strings.HasPrefix(s.Name, "pipeline.") {
			stages[s.Name] = true
		}
	}
	for _, want := range []string{
		"pipeline.behavior", "pipeline.dfa", "pipeline.spec",
		"pipeline.flatten", "pipeline.claim",
	} {
		if !stages[want] {
			t.Errorf("missing %s span (have %v)", want, stages)
		}
	}
}

// TestCheckAllContextDisjointSpanTrees runs the concurrent fan-out with
// tracing on and checks that every class gets its own subtree: one
// check.module root, one check.class child per class (each with a
// distinct class attribute), and every pipeline span attributed to
// exactly one class's subtree — concurrency must not cross-link them.
// Run with -race in CI.
func TestCheckAllContextDisjointSpanTrees(t *testing.T) {
	const composites = 8
	m := manyValidClasses(t, composites)
	ctx, ring := tracedContext(t)
	if _, err := m.CheckAllContext(ctx, 4); err != nil {
		t.Fatal(err)
	}

	spans := ring.Snapshot()
	byID, traces := spanIndex(spans)
	if len(traces) != 1 {
		t.Fatalf("one CheckAllContext produced %d traces, want 1", len(traces))
	}

	var moduleRoot obs.SpanData
	classRoots := make(map[string]string) // check.class span ID -> class name
	for _, s := range spans {
		switch s.Name {
		case "check.module":
			if moduleRoot.SpanID != "" {
				t.Fatal("more than one check.module span")
			}
			moduleRoot = s
		case "check.class":
			classRoots[s.SpanID] = attr(s, "class")
		}
	}
	if moduleRoot.SpanID == "" {
		t.Fatal("no check.module span recorded")
	}
	// n composites + the shared Dev base class.
	if len(classRoots) != composites+1 {
		t.Fatalf("%d check.class spans, want %d", len(classRoots), composites+1)
	}
	seen := make(map[string]bool)
	for id, class := range classRoots {
		if class == "" {
			t.Errorf("check.class span %s has no class attribute", id)
		}
		if seen[class] {
			t.Errorf("two check.class spans for class %q", class)
		}
		seen[class] = true
		if byID[id].ParentID != moduleRoot.SpanID {
			t.Errorf("check.class %q is not a direct child of check.module", class)
		}
	}

	for _, s := range spans {
		if s.Name == "check.module" || s.Name == "check.class" {
			continue
		}
		owner := nearestAncestor(byID, s, "check.class")
		if _, ok := classRoots[owner]; !ok {
			t.Errorf("span %s (%s) belongs to no class subtree (owner %q)", s.Name, s.SpanID, owner)
		}
	}
}

// TestTracingPreservesReports is the differential guarantee: with and
// without a tracer in the context, sequential or fan-out, the rendered
// reports must be byte-identical. Run with -race in CI.
func TestTracingPreservesReports(t *testing.T) {
	render := func(rs []*Report) string {
		var b strings.Builder
		for _, r := range rs {
			b.WriteString(r.Class)
			b.WriteString("\n")
			b.WriteString(r.String())
			b.WriteString("\n")
		}
		return b.String()
	}

	for _, workers := range []int{1, 4} {
		plain := manyValidClasses(t, 12)
		traced := manyValidClasses(t, 12)

		want, err := plain.CheckAllContext(context.Background(), workers)
		if err != nil {
			t.Fatal(err)
		}
		ctx, ring := tracedContext(t)
		got, err := traced.CheckAllContext(ctx, workers)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != render(want) {
			t.Errorf("workers=%d: traced reports differ from untraced:\n%s\nvs\n%s",
				workers, render(got), render(want))
		}
		if ring.Total() == 0 {
			t.Errorf("workers=%d: traced run recorded no spans", workers)
		}
	}
}

package shelley

// This file is the experiment index of DESIGN.md §3: one regeneration
// target per table and figure of the paper. Each TestPaper* test
// recomputes the corresponding artifact and asserts the properties the
// paper reports; the matching Benchmark* targets live in bench_test.go.

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/core"
	"github.com/shelley-go/shelley/internal/ir"
	"github.com/shelley-go/shelley/internal/regex"
	"github.com/shelley-go/shelley/internal/trace"
)

// --- T1: Table 1 — annotations, where they apply, and their meanings ---

func TestPaperTable1Annotations(t *testing.T) {
	src := `@claim("G !x.boom")
@sys(["x"])
class Composite:
    def __init__(self):
        self.x = Base()

    @op_initial
    def first(self):
        self.x.go()
        return ["middle"]

    @op
    def middle(self):
        return ["last", "both"]

    @op_final
    def last(self):
        return []

    @op_initial_final
    def both(self):
        return []

@sys
class Base:
    @op_initial_final
    def go(self):
        return []
`
	m, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := m.Class("Composite")
	base, _ := m.Class("Base")

	// @claim applies to a class and records a temporal requirement.
	if got := comp.Claims(); !reflect.DeepEqual(got, []string{"G !x.boom"}) {
		t.Errorf("claims = %v", got)
	}
	// @sys marks a base class; @sys([...]) a composite class.
	if got := base.Subsystems(); len(got) != 0 {
		t.Errorf("base subsystems = %v", got)
	}
	if got := comp.Subsystems(); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("composite subsystems = %v", got)
	}
	// The four method annotations set initial/final as Table 1 states.
	spec, err := comp.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []struct {
		trace []string
		want  bool
	}{
		{[]string{"first", "middle", "last"}, true}, // initial → op → final
		{[]string{"both"}, true},                    // initial and final at once
		{[]string{"middle"}, false},                 // @op is not initial
		{[]string{"first", "middle"}, false},        // @op is not final
		{[]string{"first"}, false},                  // @op_initial is not final
		{[]string{"last"}, false},                   // @op_final is not initial
	} {
		if got := spec.Accepts(tt.trace); got != tt.want {
			t.Errorf("spec.Accepts(%v) = %v, want %v", tt.trace, got, tt.want)
		}
	}
}

// --- T2: Table 2 — return statements and their meanings ---

func TestPaperTable2Returns(t *testing.T) {
	src := `@sys
class C:
    @op_initial
    def a(self):
        return ["close"]

    @op_initial
    def b(self):
        return ["open", "clean"]

    @op_initial
    def c(self):
        return ["close"], 2

    @op_initial
    def d(self):
        return ["close"], True

    @op_initial
    def e(self):
        return ["open", "clean"], 2

    @op_final
    def close(self):
        return []

    @op_final
    def open(self):
        return []

    @op_final
    def clean(self):
        return []
`
	m, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := m.Class("C")
	spec, err := c.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	// Rows 1 and 3 and 4: expecting "close" next (rows 3-5 additionally
	// carry a user value, which does not change the protocol).
	for _, op := range []string{"a", "c", "d"} {
		if !spec.Accepts([]string{op, "close"}) {
			t.Errorf("[%s close] should be accepted", op)
		}
		if spec.Accepts([]string{op, "open"}) {
			t.Errorf("[%s open] should be rejected", op)
		}
	}
	// Rows 2 and 5: expecting "open" or "clean" next.
	for _, op := range []string{"b", "e"} {
		for _, next := range []string{"open", "clean"} {
			if !spec.Accepts([]string{op, next}) {
				t.Errorf("[%s %s] should be accepted", op, next)
			}
		}
		if spec.Accepts([]string{op, "close"}) {
			t.Errorf("[%s close] should be rejected", op)
		}
	}
}

// --- F1: Fig. 1 — the Valve diagram ---

func TestPaperFig1ValveDiagram(t *testing.T) {
	m, err := LoadFile(filepath.Join("testdata", "valve.py"))
	if err != nil {
		t.Fatal(err)
	}
	valve, _ := m.Class("Valve")
	dot := valve.ProtocolDiagram()
	// The five edges drawn in Fig. 1.
	for _, edge := range []string{
		`"test" -> "clean"`, `"test" -> "open"`,
		`"open" -> "close"`, `"close" -> "test"`, `"clean" -> "test"`,
	} {
		if !strings.Contains(dot, edge) {
			t.Errorf("Fig. 1 edge %s missing", edge)
		}
	}
	if strings.Count(dot, `" -> "`) != 5 {
		t.Errorf("Fig. 1 has exactly 5 edges; got\n%s", dot)
	}
}

// --- F2: Fig. 2 — BadSector: diagram and both §2.2 error messages ---

func TestPaperFig2BadSectorErrors(t *testing.T) {
	m, err := LoadFiles(
		filepath.Join("testdata", "valve.py"),
		filepath.Join("testdata", "badsector.py"),
	)
	if err != nil {
		t.Fatal(err)
	}
	bad, _ := m.Class("BadSector")
	report, err := bad.Check()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Diagnostics) != 2 {
		t.Fatalf("diagnostics = %d:\n%s", len(report.Diagnostics), report)
	}

	wantUsage := "Error in specification: INVALID SUBSYSTEM USAGE\n" +
		"Counter example: open_a, a.test, a.open\n" +
		"Subsystems errors:\n" +
		"  * Valve 'a': test, >open< (not final)"
	if got := report.Diagnostics[0].Message; got != wantUsage {
		t.Errorf("usage error:\n%s\nwant:\n%s", got, wantUsage)
	}

	claim := report.Diagnostics[1]
	if claim.Kind != KindClaimFailure {
		t.Fatalf("second diagnostic kind = %v", claim.Kind)
	}
	if !strings.Contains(claim.Message, "Formula: (!a.open) W b.open") {
		t.Errorf("claim error:\n%s", claim.Message)
	}
}

// --- F3: Fig. 3 — the Sector dependency model ---

func TestPaperFig3SectorModel(t *testing.T) {
	m, err := LoadFile(filepath.Join("testdata", "sector.py"))
	if err != nil {
		t.Fatal(err)
	}
	sector, _ := m.Class("Sector")
	dot, err := sector.DependencyDiagram()
	if err != nil {
		t.Fatal(err)
	}
	// 4 entry nodes, 6 exit nodes, 11 arcs — the structure of Fig. 3.
	if got := strings.Count(dot, "shape=box"); got != 4 {
		t.Errorf("entries = %d", got)
	}
	if got := strings.Count(dot, "shape=ellipse"); got != 6 {
		t.Errorf("exits = %d", got)
	}
	if got := strings.Count(dot, " -> "); got != 11 {
		t.Errorf("arcs = %d", got)
	}
}

// --- F4a: Fig. 4 Examples 1-2 — trace membership ---

func paperExampleProgram() ir.Program {
	return ir.NewLoop(ir.NewSeq(
		ir.NewCall("a"),
		ir.NewIf(
			ir.NewSeq(ir.NewCall("b"), ir.NewReturn()),
			ir.NewCall("c"),
		),
	))
}

func TestPaperFig4Examples12(t *testing.T) {
	p := paperExampleProgram()
	// Example 1: 0 ⊢ [a, c, a, c] ∈ p.
	if !trace.In(trace.Ongoing, []string{"a", "c", "a", "c"}, p) {
		t.Error("Example 1 fails")
	}
	// Example 2: R ⊢ [a, c, a, b] ∈ p.
	if !trace.In(trace.Returned, []string{"a", "c", "a", "b"}, p) {
		t.Error("Example 2 fails")
	}
}

// --- F4b: Fig. 4 Example 3 — behavior inference, verbatim ---

func TestPaperFig4Example3(t *testing.T) {
	res := core.Extract(paperExampleProgram())
	if got, want := res.Ongoing.String(), "(a . (b . 0 + c))*"; got != want {
		t.Errorf("⟦p⟧ ongoing = %q, want %q", got, want)
	}
	if len(res.Returned) != 1 {
		t.Fatalf("⟦p⟧ returned = %v", res.Returned)
	}
	if got, want := res.Returned[0].String(), "(a . (b . 0 + c))* . a . b"; got != want {
		t.Errorf("⟦p⟧ returned = %q, want %q", got, want)
	}
}

// --- TH1+TH2: Theorems 1 and 2 on fresh random programs ---

func TestPaperTheorems(t *testing.T) {
	rng := rand.New(rand.NewSource(20230810)) // the paper's date
	for i := 0; i < 300; i++ {
		p := ir.Random(rng, ir.GeneratorConfig{MaxDepth: 3, Labels: []string{"a", "b"}})
		inferred := core.Infer(p)
		semantic := regex.TraceSet(trace.Language(p, 3))
		enumerated := regex.TraceSet(regex.Enumerate(inferred, 3))
		if len(semantic) != len(enumerated) {
			t.Fatalf("program %v: |L(p)| = %d, |infer(p)| = %d", p, len(semantic), len(enumerated))
		}
		for k := range semantic {
			if _, ok := enumerated[k]; !ok {
				t.Fatalf("program %v: soundness violated", p)
			}
		}
	}
}

// --- C1: Corollary 1 — L(p) is regular; automata round trips ---

func TestPaperCorollary1Regularity(t *testing.T) {
	p := paperExampleProgram()
	inferred := regex.Simplify(core.Infer(p))
	dfa := automata.CompileMinimal(inferred)
	// The DFA decides L(p): agree with the trace semantics on every
	// trace up to length 6.
	alphabet := []string{"a", "b", "c"}
	frontier := [][]string{nil}
	for depth := 0; depth <= 6; depth++ {
		var next [][]string
		for _, tr := range frontier {
			if got, want := dfa.Accepts(tr), trace.InLanguage(tr, p); got != want {
				t.Errorf("DFA(%v) = %v, semantics = %v", tr, got, want)
			}
			if depth < 6 {
				for _, a := range alphabet {
					next = append(next, append(append([]string{}, tr...), a))
				}
			}
		}
		frontier = next
	}
	// Round trip: regex → DFA → regex preserves the language.
	back := dfa.ToRegex()
	if !regex.Equivalent(inferred, back) {
		t.Errorf("round trip changed language: %v vs %v", inferred, back)
	}
}

// --- X1: L* recovers the paper's protocols dynamically ---

func TestPaperX1LearnedModelsMatchStatic(t *testing.T) {
	m, err := LoadFiles(
		filepath.Join("testdata", "valve.py"),
		filepath.Join("testdata", "sector.py"),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Valve", "Sector"} {
		c, ok := m.Class(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		res, err := c.Learn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		spec, err := c.SpecDFA("")
		if err != nil {
			t.Fatal(err)
		}
		if !automata.Equivalent(res.DFA, spec) {
			t.Errorf("%s: learned model differs from static model", name)
		}
	}
}

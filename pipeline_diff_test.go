package shelley

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/pipeline"
)

// Differential property tests of the memoizing pipeline cache: every
// analysis the library exposes must produce byte-identical results with
// caching on and off, across worker counts, over a large population of
// random classes. This is the safety net that lets the cache be
// aggressive — any aliasing bug (two distinct programs sharing a cache
// key) or stale-artifact bug (a cached automaton mutated by a caller)
// surfaces as a diff here. Run under -race in CI, which additionally
// checks the singleflight and shard locking under CheckAllConcurrent.

// diffModule generates one random module with two independent base
// classes and two composites (one per base), so concurrent checks hit
// both shared entries (same base fingerprint) and distinct ones.
func diffModule(rng *rand.Rand) (string, int) {
	nOps0 := 2 + rng.Intn(3)
	nOps1 := 2 + rng.Intn(3)
	ops := func(n int) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("op%d", i)
		}
		return out
	}
	src := randBaseClass(rng, "Dev0", nOps0) + "\n" +
		randBaseClass(rng, "Dev1", nOps1) + "\n" +
		randComposite(rng, "Ctl0", "Dev0", ops(nOps0)) + "\n" +
		randComposite(rng, "Ctl1", "Dev1", ops(nOps1))
	return src, 4
}

func TestPipelineCacheDifferential(t *testing.T) {
	const modules = 20
	workerCounts := []int{1, 2, runtime.GOMAXPROCS(0)}
	classesChecked := 0

	for wi, workers := range workerCounts {
		rng := rand.New(rand.NewSource(int64(9000 + wi)))
		for m := 0; m < modules; m++ {
			src, nClasses := diffModule(rng)

			cached, err := LoadSource(src)
			if err != nil {
				t.Fatalf("workers=%d module=%d: %v\n%s", workers, m, err, src)
			}
			uncached, err := LoadSource(src)
			if err != nil {
				t.Fatal(err)
			}
			uncached.SetPipelineCaching(false)

			// (a) Reports: concurrent cached vs sequential uncached must
			// be byte-identical, in source order.
			cold, err := cached.CheckAllConcurrent(workers)
			if err != nil {
				t.Fatalf("workers=%d module=%d: %v\n%s", workers, m, err, src)
			}
			plain, err := uncached.CheckAll()
			if err != nil {
				t.Fatal(err)
			}
			if len(cold) != len(plain) || len(cold) != nClasses {
				t.Fatalf("workers=%d module=%d: %d cached vs %d uncached reports",
					workers, m, len(cold), len(plain))
			}
			for i := range cold {
				if cold[i].String() != plain[i].String() {
					t.Fatalf("workers=%d module=%d class %s: cached report differs\n--- cached ---\n%s\n--- uncached ---\n%s\nsource:\n%s",
						workers, m, plain[i].Class, cold[i], plain[i], src)
				}
			}
			classesChecked += nClasses

			// (b) Warm pass: serving from cache must not change a byte,
			// and must actually hit the report stage.
			before := cached.PipelineStats().Of(pipeline.StageReport).Hits
			warm, err := cached.CheckAllConcurrent(workers)
			if err != nil {
				t.Fatal(err)
			}
			for i := range warm {
				if warm[i].String() != plain[i].String() {
					t.Fatalf("workers=%d module=%d class %s: warm report differs", workers, m, plain[i].Class)
				}
			}
			after := cached.PipelineStats().Of(pipeline.StageReport)
			if after.Hits < before+uint64(nClasses) {
				t.Fatalf("workers=%d module=%d: warm pass hit report cache %d times, want ≥ %d",
					workers, m, after.Hits-before, nClasses)
			}

			// (c) Per-class artifacts: behaviors, protocol automata, and
			// flattened automata agree across the two modes.
			for _, cc := range cached.Classes() {
				uc, ok := uncached.Class(cc.Name())
				if !ok {
					t.Fatalf("class %s missing from uncached module", cc.Name())
				}
				for _, op := range cc.Operations() {
					bc, err1 := cc.Behavior(op)
					bu, err2 := uc.Behavior(op)
					if err1 != nil || err2 != nil || bc != bu {
						t.Fatalf("class %s op %s: behavior differs (%q vs %q, errs %v %v)",
							cc.Name(), op, bc, bu, err1, err2)
					}
					sc, err1 := cc.BehaviorSimplified(op)
					su, err2 := uc.BehaviorSimplified(op)
					if err1 != nil || err2 != nil || sc != su {
						t.Fatalf("class %s op %s: simplified behavior differs (%q vs %q)",
							cc.Name(), op, sc, su)
					}
				}
				dc, err := cc.SpecDFA("")
				if err != nil {
					t.Fatal(err)
				}
				du, err := uc.SpecDFA("")
				if err != nil {
					t.Fatal(err)
				}
				if !automata.Equivalent(dc, du) {
					t.Fatalf("class %s: cached SpecDFA differs in language\n%s", cc.Name(), src)
				}
				for _, opts := range [][]Option{nil, {Precise()}} {
					fc, err := cc.FlattenedDFA(opts...)
					if err != nil {
						t.Fatal(err)
					}
					fu, err := uc.FlattenedDFA(opts...)
					if err != nil {
						t.Fatal(err)
					}
					if !automata.Equivalent(fc, fu) {
						w, _ := automata.Distinguish(fc, fu)
						t.Fatalf("class %s (precise=%v): flattened language differs, witness %v\n%s",
							cc.Name(), len(opts) > 0, w, src)
					}
				}
			}

			// (d) Cache hygiene: mutating what the public API returned
			// must not leak into later answers.
			ctl, _ := cached.Class("Ctl0")
			f1, err := ctl.FlattenedDFA()
			if err != nil {
				t.Fatal(err)
			}
			for s := 0; s < f1.NumStates(); s++ {
				f1.SetAccepting(s, !f1.Accepting(s)) // vandalize the returned copy
			}
			f2, err := ctl.FlattenedDFA()
			if err != nil {
				t.Fatal(err)
			}
			ufc, _ := uncached.Class("Ctl0")
			f3, err := ufc.FlattenedDFA()
			if err != nil {
				t.Fatal(err)
			}
			if !automata.Equivalent(f2, f3) {
				t.Fatalf("mutating a returned FlattenedDFA poisoned the cache\n%s", src)
			}
			r2, err := ctl.Check()
			if err != nil {
				t.Fatal(err)
			}
			ur2, err := ufc.Check()
			if err != nil {
				t.Fatal(err)
			}
			if r2.String() != ur2.String() {
				t.Fatalf("report after DFA mutation differs\n%s", src)
			}
		}
	}

	const minClasses = 200
	if classesChecked < minClasses {
		t.Fatalf("differential test covered %d classes, want ≥ %d", classesChecked, minClasses)
	}
}

// TestPipelineCacheReportIsolation checks the clone-on-hit contract of
// report memoization: a caller mutating a returned report must not
// affect the next caller's copy.
func TestPipelineCacheReportIsolation(t *testing.T) {
	m := loadPaper(t)
	bad, _ := m.Class("BadSector")
	r1, err := bad.Check()
	if err != nil {
		t.Fatal(err)
	}
	if r1.OK() {
		t.Fatal("BadSector must fail")
	}
	want := r1.String()
	r1.Diagnostics[0].Message = "VANDALIZED"
	r1.Diagnostics[0].Counterexample = append(r1.Diagnostics[0].Counterexample, "bogus")
	r2, err := bad.Check()
	if err != nil {
		t.Fatal(err)
	}
	if r2.String() != want {
		t.Fatalf("mutating a returned report changed the cached one:\n%s", r2)
	}
}

// TestPipelineStatsObservability drives the paper module and checks the
// counters tell a coherent story: cold run is all misses, warm run is
// all hits, and disabling caching zeroes the stats.
func TestPipelineStatsObservability(t *testing.T) {
	m := loadPaper(t)
	if _, err := m.CheckAll(); err != nil {
		t.Fatal(err)
	}
	cold := m.PipelineStats()
	if cold.TotalMisses() == 0 {
		t.Fatal("cold run recorded no cache misses")
	}
	if got := cold.Of(pipeline.StageReport).Entries; got != 3 {
		t.Fatalf("report stage has %d entries after checking 3 classes, want 3", got)
	}
	if _, err := m.CheckAll(); err != nil {
		t.Fatal(err)
	}
	warm := m.PipelineStats()
	if warm.Of(pipeline.StageReport).Hits < 3 {
		t.Fatalf("warm CheckAll hit the report stage %d times, want ≥ 3",
			warm.Of(pipeline.StageReport).Hits)
	}
	if warm.TotalMisses() != cold.TotalMisses() {
		t.Fatalf("warm run rebuilt artifacts: misses went %d → %d",
			cold.TotalMisses(), warm.TotalMisses())
	}
	if s := warm.String(); len(s) == 0 {
		t.Fatal("empty stats rendering")
	}
	m.SetPipelineCaching(false)
	if off := m.PipelineStats(); off.TotalHits() != 0 || off.TotalMisses() != 0 {
		t.Fatal("stats must read zero with caching disabled")
	}
}

package shelley

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
)

// Whole-pipeline property tests over randomly generated annotated
// classes: a generator produces MicroPython source for a random base
// class and a random composite over it, and the properties of
// DESIGN.md §4 are checked on each — determinism of the analysis,
// precise ⊆ union flattening, counterexamples replaying as runtime
// violations, and verified classes being runtime-safe.

// randBaseClass emits a base class with n operations, each returning a
// random continuation set; at least one op is initial and the return
// sets only name defined ops.
func randBaseClass(rng *rand.Rand, name string, n int) string {
	ops := make([]string, n)
	for i := range ops {
		ops[i] = fmt.Sprintf("op%d", i)
	}
	var b strings.Builder
	b.WriteString("@sys\nclass " + name + ":\n")
	for i, op := range ops {
		decorator := "@op"
		initial := i == 0 || rng.Intn(3) == 0
		final := rng.Intn(2) == 0
		switch {
		case initial && final:
			decorator = "@op_initial_final"
		case initial:
			decorator = "@op_initial"
		case final:
			decorator = "@op_final"
		}
		// 1 or 2 return statements with random next sets.
		exits := 1 + rng.Intn(2)
		b.WriteString("    " + decorator + "\n    def " + op + "(self):\n")
		writeExit := func() {
			var next []string
			for _, candidate := range ops {
				if rng.Intn(3) == 0 {
					next = append(next, fmt.Sprintf("%q", candidate))
				}
			}
			b.WriteString("            return [" + strings.Join(next, ", ") + "]\n")
		}
		if exits == 1 {
			b.WriteString("        if True:\n")
			writeExit()
			b.WriteString("        else:\n")
			writeExit()
		} else {
			b.WriteString("        if self.cond():\n")
			writeExit()
			b.WriteString("        else:\n")
			writeExit()
		}
		b.WriteString("\n")
	}
	return b.String()
}

// randComposite emits a composite over the base class with random
// bodies: sequences of subsystem calls wrapped in optional ifs and
// loops.
func randComposite(rng *rand.Rand, name, baseName string, baseOps []string) string {
	var b strings.Builder
	b.WriteString(fmt.Sprintf("@sys([\"d\"])\nclass %s:\n    def __init__(self):\n        self.d = %s()\n\n", name, baseName))
	nOps := 1 + rng.Intn(3)
	for i := 0; i < nOps; i++ {
		decorator := "@op"
		if i == 0 {
			decorator = "@op_initial"
		}
		if i == nOps-1 {
			if i == 0 {
				decorator = "@op_initial_final"
			} else {
				decorator = "@op_final"
			}
		}
		b.WriteString("    " + decorator + "\n")
		fmt.Fprintf(&b, "    def go%d(self):\n", i)
		stmts := 1 + rng.Intn(3)
		for s := 0; s < stmts; s++ {
			call := fmt.Sprintf("self.d.%s()", baseOps[rng.Intn(len(baseOps))])
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&b, "        %s\n", call)
			case 1:
				fmt.Fprintf(&b, "        if self.x():\n            %s\n", call)
			default:
				fmt.Fprintf(&b, "        while self.x():\n            %s\n", call)
			}
		}
		next := "[]"
		if i < nOps-1 {
			next = fmt.Sprintf("[\"go%d\"]", i+1)
		}
		fmt.Fprintf(&b, "        return %s\n\n", next)
	}
	return b.String()
}

func TestRandomClassesPipelineProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < 60; i++ {
		nOps := 2 + rng.Intn(3)
		baseSrc := randBaseClass(rng, "Dev", nOps)
		baseOps := make([]string, nOps)
		for j := range baseOps {
			baseOps[j] = fmt.Sprintf("op%d", j)
		}
		src := baseSrc + "\n" + randComposite(rng, "Ctl", "Dev", baseOps)

		m, err := LoadSource(src)
		if err != nil {
			t.Fatalf("case %d: generated source does not load: %v\n%s", i, err, src)
		}
		ctl, ok := m.Class("Ctl")
		if !ok {
			t.Fatal("Ctl missing")
		}

		// (a) Determinism: two runs yield identical reports.
		r1, err := ctl.Check()
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, src)
		}
		r2, err := ctl.Check()
		if err != nil {
			t.Fatal(err)
		}
		if r1.String() != r2.String() {
			t.Fatalf("case %d: analysis not deterministic\n%s", i, src)
		}

		// (b) precise ⊆ union flattened language.
		union, err := ctl.FlattenedDFA()
		if err != nil {
			t.Fatal(err)
		}
		precise, err := ctl.FlattenedDFA(Precise())
		if err != nil {
			t.Fatal(err)
		}
		if ok, w := automata.SubsetDFA(precise, union); !ok {
			t.Fatalf("case %d: precise ⊄ union, witness %v\n%s", i, w, src)
		}

		// (c) Every enumerated usage violation replays as a runtime
		// failure.
		violations, err := ctl.UsageViolations(2)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range violations {
			if err := ctl.ReplayFlat(v.Trace); err == nil {
				t.Fatalf("case %d: violation %v replayed cleanly\n%s", i, v.Trace, src)
			}
		}

		// (d) Verified (precise) classes are runtime-safe on sampled
		// traces.
		preciseReport, err := ctl.Check(Precise())
		if err != nil {
			t.Fatal(err)
		}
		if preciseReport.OK() {
			for k := 0; k < 20; k++ {
				tr, ok := precise.RandomAccepted(rng, 10)
				if !ok {
					break
				}
				if err := ctl.ReplayFlat(tr); err != nil {
					t.Fatalf("case %d: verified class, trace %v failed: %v\n%s", i, tr, err, src)
				}
			}
		}
	}
}

func TestRandomBaseClassesLearnable(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for i := 0; i < 15; i++ {
		src := randBaseClass(rng, "Dev", 2+rng.Intn(2))
		m, err := LoadSource(src)
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, src)
		}
		dev, _ := m.Class("Dev")
		res, err := dev.Learn()
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, src)
		}
		spec, err := dev.SpecDFA("")
		if err != nil {
			t.Fatal(err)
		}
		if !automata.Equivalent(res.DFA, spec) {
			t.Fatalf("case %d: learned model differs from spec\n%s", i, src)
		}
	}
}

package shelley

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"
	"time"

	"github.com/shelley-go/shelley/internal/depgraph"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/pipeline"
)

// Session is the incremental re-verification surface for edit loops
// (ROADMAP open item 4): a mutable module identity over immutable
// per-method artifacts. One pipeline cache lives for the whole session;
// every Update parses the incoming source into a fresh Module bound to
// that same cache, so the content-addressed artifacts of every
// unchanged method (behavior DFAs), unchanged protocol (spec automata),
// and unchanged class (flattened automata, whole-class reports) are
// reused across generations instead of being rebuilt. The Diff reports
// what moved — at class and method granularity — and predicts the
// invalidation frontier by propagating protocol-level changes along the
// class dependency graph; correctness never depends on that prediction,
// because the cache keys themselves encode exactly what each stage
// reads.
//
// A Session is safe for concurrent use; Update/Recheck serialize, so a
// watch loop feeding edits and readers calling Module interleave
// cleanly.
type Session struct {
	mu      sync.Mutex
	cache   *pipeline.Cache
	mod     *Module
	srcHash string
}

// NewSession returns an empty session. The first Update (or Recheck)
// makes a module resident; until then Module returns nil.
func NewSession() *Session {
	return &Session{cache: pipeline.New()}
}

// Module returns the resident module of the session (the last
// successful Update), or nil before the first one.
func (s *Session) Module() *Module {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mod
}

// MethodDiff is the method-granularity difference of one changed class,
// computed from per-operation fingerprints.
type MethodDiff struct {
	// Added, Removed, Changed, and Unchanged partition the union of the
	// two generations' operation names, each sorted.
	Added, Removed, Changed, Unchanged []string
}

// Diff describes what one Update changed relative to the previous
// resident module.
type Diff struct {
	// Initial is true for the session's first Update: there is no
	// previous generation, so everything is Added and Invalidated.
	Initial bool

	// Added, Removed, Changed, and Unchanged partition the union of the
	// two generations' class names (each sorted): present only in the
	// new module, only in the old, in both with a moved fingerprint, or
	// in both byte-identical to the analysis.
	Added, Removed, Changed, Unchanged []string

	// ProtocolChanged lists the changed classes whose externally
	// observable protocol surface moved (model.ProtocolFingerprint) —
	// only these propagate invalidation to their dependents. A class
	// in Changed but not here had a body-only edit: it re-verifies
	// alone and every dependent's cached report stays valid.
	ProtocolChanged []string

	// Methods maps each changed class to its method-level diff.
	Methods map[string]MethodDiff

	// Invalidated predicts the re-verification frontier: the changed
	// and added classes themselves, plus every class of the new module
	// reachable by reverse dependency from a protocol-changed, added,
	// or removed class. Classes outside it are answered entirely from
	// cache on the next check. Sorted.
	Invalidated []string
}

// Clean reports whether the update changed nothing the analysis can
// observe.
func (d Diff) Clean() bool {
	return !d.Initial && len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// Update parses source into a new module generation sharing the
// session's pipeline cache and makes it resident, returning the module
// and its diff against the previous generation. A parse or model error
// leaves the previous generation resident (the edit loop keeps serving
// the last good module) and returns the error. Identical source (byte
// for byte) is recognized without reparsing.
func (s *Session) Update(ctx context.Context, name string, source []byte) (*Module, Diff, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updateLocked(ctx, name, source)
}

func (s *Session) updateLocked(ctx context.Context, name string, source []byte) (*Module, Diff, error) {
	sum := sha256.Sum256(source)
	hash := hex.EncodeToString(sum[:])
	if s.mod != nil && hash == s.srcHash {
		d := Diff{Unchanged: classNames(s.mod)}
		return s.mod, d, nil
	}
	mod, err := loadReaderCache(ctx, name, bytes.NewReader(source), s.cache)
	if err != nil {
		return nil, Diff{}, err
	}
	d := diffModules(s.mod, mod)
	s.mod = mod
	s.srcHash = hash
	return mod, d, nil
}

// RecheckResult is the outcome of one incremental edit-and-verify
// round.
type RecheckResult struct {
	// Module is the resident module after the update.
	Module *Module

	// Diff is the generation diff the update computed.
	Diff Diff

	// Reports are the verification reports of every class, in source
	// order — byte-identical to what a cold full check of the same
	// source yields.
	Reports []*Report

	// Stats is the pipeline activity of this round alone (the delta of
	// the session cache's counters across the re-check): hits are
	// artifacts reused from previous generations, misses are stages
	// that actually re-executed because an input fingerprint moved.
	Stats PipelineStats

	// ReusedReports counts classes answered from a memoized whole-class
	// report; CheckedClasses counts classes whose report stage re-ran.
	ReusedReports  int
	CheckedClasses int

	// Elapsed is the wall time of the whole round (update + checks).
	Elapsed time.Duration
}

// Recheck is the one-call edit loop primitive: Update followed by a
// verification of every class of the new generation, with the pipeline
// activity of exactly this round measured. Unchanged classes (and
// unchanged dependents of body-only edits) are answered from the
// session cache; only stages whose input fingerprints moved re-execute.
// Options (e.g. Precise) apply to every class check.
func (s *Session) Recheck(ctx context.Context, name string, source []byte, opts ...Option) (*RecheckResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := time.Now()
	mod, d, err := s.updateLocked(ctx, name, source)
	if err != nil {
		return nil, err
	}
	before := mod.PipelineStats()
	reports := make([]*Report, 0, len(mod.classes))
	for _, c := range mod.classes {
		r, err := c.CheckContext(ctx, opts...)
		if err != nil {
			return nil, err
		}
		reports = append(reports, r)
	}
	after := mod.PipelineStats()
	delta := after.Sub(before)
	reportStage := delta.Of(pipeline.StageReport)
	return &RecheckResult{
		Module:         mod,
		Diff:           d,
		Reports:        reports,
		Stats:          delta,
		ReusedReports:  int(reportStage.Hits),
		CheckedClasses: int(reportStage.Misses),
		Elapsed:        time.Since(start),
	}, nil
}

// classNames returns the module's class names in source order.
func classNames(m *Module) []string {
	out := make([]string, 0, len(m.classes))
	for _, c := range m.classes {
		out = append(out, c.Name())
	}
	return out
}

// diffModules computes the generation diff, old → new. old may be nil
// (the session's first generation).
func diffModules(old, new *Module) Diff {
	if old == nil {
		names := classNames(new)
		sorted := append([]string(nil), names...)
		sort.Strings(sorted)
		return Diff{Initial: true, Added: sorted, Invalidated: sorted}
	}

	oldByName := make(map[string]*model.Class, len(old.classes))
	for _, c := range old.classes {
		oldByName[c.Name()] = c.model
	}
	d := Diff{Methods: make(map[string]MethodDiff)}
	newNames := make(map[string]struct{}, len(new.classes))
	var protoSeeds []string // classes whose protocol surface moved, plus added/removed names
	for _, c := range new.classes {
		name := c.Name()
		newNames[name] = struct{}{}
		oc, ok := oldByName[name]
		switch {
		case !ok:
			d.Added = append(d.Added, name)
			protoSeeds = append(protoSeeds, name)
		case oc.Fingerprint() == c.model.Fingerprint():
			d.Unchanged = append(d.Unchanged, name)
		default:
			d.Changed = append(d.Changed, name)
			d.Methods[name] = diffMethods(oc, c.model)
			if oc.ProtocolFingerprint() != c.model.ProtocolFingerprint() {
				d.ProtocolChanged = append(d.ProtocolChanged, name)
				protoSeeds = append(protoSeeds, name)
			}
		}
	}
	for _, c := range old.classes {
		if _, ok := newNames[c.Name()]; !ok {
			d.Removed = append(d.Removed, c.Name())
			protoSeeds = append(protoSeeds, c.Name())
		}
	}
	sort.Strings(d.Added)
	sort.Strings(d.Removed)
	sort.Strings(d.Changed)
	sort.Strings(d.Unchanged)
	sort.Strings(d.ProtocolChanged)

	// The invalidation frontier: every changed or added class
	// re-verifies itself; protocol-level changes additionally travel
	// the reverse class-dependency arcs (a dependent reads nothing
	// deeper than a subsystem's protocol, so body-only changes stop at
	// the class that made them).
	uses := make(map[string][]string, len(new.classes))
	for _, c := range new.classes {
		for _, field := range c.model.SubsystemNames {
			uses[c.Name()] = append(uses[c.Name()], c.model.SubsystemTypes[field])
		}
	}
	frontier := make(map[string]struct{})
	for _, name := range d.Changed {
		frontier[name] = struct{}{}
	}
	for _, name := range d.Added {
		frontier[name] = struct{}{}
	}
	for _, name := range depgraph.BuildClasses(uses).Dependents(protoSeeds) {
		if _, ok := newNames[name]; ok {
			frontier[name] = struct{}{}
		}
	}
	d.Invalidated = make([]string, 0, len(frontier))
	for name := range frontier {
		d.Invalidated = append(d.Invalidated, name)
	}
	sort.Strings(d.Invalidated)
	return d
}

// diffMethods partitions the operations of one class across two
// generations by per-operation fingerprint.
func diffMethods(old, new *model.Class) MethodDiff {
	var md MethodDiff
	for _, op := range new.Operations {
		oop := old.Operation(op.Name)
		switch {
		case oop == nil:
			md.Added = append(md.Added, op.Name)
		case oop.Fingerprint() == op.Fingerprint():
			md.Unchanged = append(md.Unchanged, op.Name)
		default:
			md.Changed = append(md.Changed, op.Name)
		}
	}
	for _, op := range old.Operations {
		if new.Operation(op.Name) == nil {
			md.Removed = append(md.Removed, op.Name)
		}
	}
	sort.Strings(md.Added)
	sort.Strings(md.Removed)
	sort.Strings(md.Changed)
	sort.Strings(md.Unchanged)
	return md
}

package shelley

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/pipeline"
)

// sessionSource builds a module of one base class (Dev, last in the
// file so editing it shifts no other class's positions) and nComposites
// composites over it. Composite method bodies are derived from seeds so
// a test can regenerate exactly one method with a new seed — a
// one-method, layout-preserving edit.
func sessionSource(nComposites int, seeds map[string]int64) string {
	var b strings.Builder
	for i := 0; i < nComposites; i++ {
		name := fmt.Sprintf("Ctl%d", i)
		fmt.Fprintf(&b, "@sys([\"d\"])\nclass %s:\n    def __init__(self):\n        self.d = Dev()\n\n", name)
		for m := 0; m < 2; m++ {
			decorator := "@op_initial"
			next := fmt.Sprintf("[\"m%d\"]", m+1)
			if m == 1 {
				decorator = "@op_final"
				next = "[]"
			}
			seed := seeds[fmt.Sprintf("%s.m%d", name, m)]
			rng := rand.New(rand.NewSource(seed))
			fmt.Fprintf(&b, "    %s\n    def m%d(self):\n", decorator, m)
			// Fixed statement count and shape; only the call targets
			// draw from the seed, so every generation has identical
			// line/column layout.
			for s := 0; s < 3; s++ {
				fmt.Fprintf(&b, "        self.d.op%d()\n", rng.Intn(2))
			}
			fmt.Fprintf(&b, "        return %s\n\n", next)
		}
	}
	b.WriteString("@sys\nclass Dev:\n")
	devSeed := seeds["Dev"]
	rng := rand.New(rand.NewSource(devSeed))
	for i := 0; i < 2; i++ {
		decorator := "@op_initial_final"
		var next []string
		for j := 0; j < 2; j++ {
			if rng.Intn(2) == 0 {
				next = append(next, fmt.Sprintf("%q", fmt.Sprintf("op%d", j)))
			}
		}
		fmt.Fprintf(&b, "    %s\n    def op%d(self):\n        return [%s]\n\n",
			decorator, i, strings.Join(next, ", "))
	}
	return b.String()
}

// TestSessionDiffGranularity pins the diff layers: first generation is
// Initial; a one-method body edit in a composite marks only that class
// (and that method) changed with no protocol propagation; a protocol
// edit to the base class invalidates every dependent.
func TestSessionDiffGranularity(t *testing.T) {
	ctx := context.Background()
	seeds := map[string]int64{"Ctl0.m0": 1, "Ctl0.m1": 2, "Ctl1.m0": 3, "Ctl1.m1": 4, "Dev": 10}
	s := NewSession()

	_, d, err := s.Update(ctx, "v1", []byte(sessionSource(2, seeds)))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Initial || len(d.Added) != 3 || len(d.Invalidated) != 3 {
		t.Fatalf("initial diff = %+v", d)
	}

	// Identical source: recognized without reparsing, everything
	// unchanged.
	_, d, err = s.Update(ctx, "v1", []byte(sessionSource(2, seeds)))
	if err != nil {
		t.Fatal(err)
	}
	if !d.Clean() || len(d.Unchanged) != 3 {
		t.Fatalf("identical source diff = %+v", d)
	}

	// Body-only edit of Ctl1.m0 (call targets move, layout identical):
	// one class changed, one method changed, no propagation.
	seeds["Ctl1.m0"] = 99
	_, d, err = s.Update(ctx, "v2", []byte(sessionSource(2, seeds)))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(d.Changed) != "[Ctl1]" || len(d.ProtocolChanged) != 0 {
		t.Fatalf("body edit diff = %+v", d)
	}
	if fmt.Sprint(d.Invalidated) != "[Ctl1]" {
		t.Fatalf("body edit invalidated %v, want [Ctl1]", d.Invalidated)
	}
	md := d.Methods["Ctl1"]
	if fmt.Sprint(md.Changed) != "[m0]" || fmt.Sprint(md.Unchanged) != "[m1]" {
		t.Fatalf("method diff = %+v", md)
	}

	// Protocol edit of Dev (different continuation sets): Dev changes
	// at the protocol level and both composites are invalidated.
	seeds["Dev"] = 11
	if sessionSource(2, seeds) == sessionSource(2, map[string]int64{"Ctl0.m0": 1, "Ctl0.m1": 2, "Ctl1.m0": 99, "Ctl1.m1": 4, "Dev": 10}) {
		t.Skip("seed collision: new Dev seed generated identical protocol")
	}
	_, d, err = s.Update(ctx, "v3", []byte(sessionSource(2, seeds)))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(d.Changed) != "[Dev]" || fmt.Sprint(d.ProtocolChanged) != "[Dev]" {
		t.Fatalf("protocol edit diff = %+v", d)
	}
	if fmt.Sprint(d.Invalidated) != "[Ctl0 Ctl1 Dev]" {
		t.Fatalf("protocol edit invalidated %v, want [Ctl0 Ctl1 Dev]", d.Invalidated)
	}

	// A load error must leave the previous generation resident.
	if _, _, err := s.Update(ctx, "broken", []byte("class {")); err == nil {
		t.Fatal("broken source loaded")
	}
	if s.Module() == nil || len(s.Module().Classes()) != 3 {
		t.Fatal("failed update evicted the resident module")
	}
}

// TestSessionIncrementalReuse pins the stage-level reuse contract of a
// warm edit loop: an identical re-check is all hits; a one-method edit
// re-executes the report stage for exactly the invalidated classes and
// reuses every other class's report.
func TestSessionIncrementalReuse(t *testing.T) {
	ctx := context.Background()
	seeds := map[string]int64{"Dev": 10}
	for i := 0; i < 6; i++ {
		seeds[fmt.Sprintf("Ctl%d.m0", i)] = int64(2*i + 1)
		seeds[fmt.Sprintf("Ctl%d.m1", i)] = int64(2*i + 2)
	}
	s := NewSession()

	cold, err := s.Recheck(ctx, "v1", []byte(sessionSource(6, seeds)))
	if err != nil {
		t.Fatal(err)
	}
	if cold.CheckedClasses != 7 || cold.ReusedReports != 0 {
		t.Fatalf("cold round: checked=%d reused=%d, want 7/0", cold.CheckedClasses, cold.ReusedReports)
	}

	warm, err := s.Recheck(ctx, "v1", []byte(sessionSource(6, seeds)))
	if err != nil {
		t.Fatal(err)
	}
	if warm.CheckedClasses != 0 || warm.ReusedReports != 7 {
		t.Fatalf("identical round: checked=%d reused=%d, want 0/7", warm.CheckedClasses, warm.ReusedReports)
	}
	if warm.Stats.TotalMisses() != 0 {
		t.Fatalf("identical round ran %d stage builds:\n%s", warm.Stats.TotalMisses(), warm.Stats)
	}

	// One-method body edit in one composite: exactly one report
	// re-executes; the base class and the five untouched composites are
	// answered from cache, and no protocol automaton is rebuilt.
	seeds["Ctl3.m1"] = 1001
	inc, err := s.Recheck(ctx, "v2", []byte(sessionSource(6, seeds)))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(inc.Diff.Invalidated) != "[Ctl3]" {
		t.Fatalf("invalidated %v, want [Ctl3]", inc.Diff.Invalidated)
	}
	if inc.CheckedClasses != 1 || inc.ReusedReports != 6 {
		t.Fatalf("incremental round: checked=%d reused=%d, want 1/6\n%s", inc.CheckedClasses, inc.ReusedReports, inc.Stats)
	}
	if specMisses := inc.Stats.Of(pipeline.StageSpec).Misses; specMisses != 0 {
		t.Fatalf("body-only edit rebuilt %d protocol automata", specMisses)
	}

	// The incremental reports are byte-identical to a cold full check
	// of the same source.
	fresh, err := LoadSource(sessionSource(6, seeds))
	if err != nil {
		t.Fatal(err)
	}
	freshReports, err := fresh.CheckAllConcurrent(4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range inc.Reports {
		if r.String() != freshReports[i].String() {
			t.Fatalf("class %d: incremental report diverged from cold check:\n--- incremental ---\n%s\n--- cold ---\n%s",
				i, r.String(), freshReports[i].String())
		}
	}
}

// TestSessionPropertyRandomEdits is the incremental-invalidation
// property test: across random modules and random one-method edits, the
// warm incremental re-check must (a) re-execute the report stage for
// exactly the classes the depgraph-propagated diff invalidates, reusing
// every other class's report, and (b) produce reports byte-identical to
// a cold full check of the same source. Runs under -race in CI — the
// cold comparison check runs concurrently, sharing nothing with the
// session cache.
func TestSessionPropertyRandomEdits(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		nComposites := 2 + rng.Intn(3)
		seeds := map[string]int64{"Dev": rng.Int63()}
		var methodKeys []string
		for i := 0; i < nComposites; i++ {
			for m := 0; m < 2; m++ {
				k := fmt.Sprintf("Ctl%d.m%d", i, m)
				seeds[k] = rng.Int63()
				methodKeys = append(methodKeys, k)
			}
		}
		s := NewSession()
		if _, err := s.Recheck(ctx, "v1", []byte(sessionSource(nComposites, seeds))); err != nil {
			t.Fatalf("trial %d: cold round: %v", trial, err)
		}

		// Random one-method edit: either one composite method's body
		// (layout-preserving, no propagation expected) or the base
		// class's protocol (propagates to every composite).
		if rng.Intn(3) > 0 {
			seeds[methodKeys[rng.Intn(len(methodKeys))]] = rng.Int63()
		} else {
			seeds["Dev"] = rng.Int63()
		}
		src := sessionSource(nComposites, seeds)
		inc, err := s.Recheck(ctx, "v2", []byte(src))
		if err != nil {
			t.Fatalf("trial %d: incremental round: %v", trial, err)
		}

		total := nComposites + 1
		wantChecked := len(inc.Diff.Invalidated)
		if inc.CheckedClasses != wantChecked || inc.ReusedReports != total-wantChecked {
			t.Fatalf("trial %d: checked=%d reused=%d, want %d/%d (invalidated %v)\n%s",
				trial, inc.CheckedClasses, inc.ReusedReports, wantChecked, total-wantChecked,
				inc.Diff.Invalidated, inc.Stats)
		}
		if len(inc.Diff.ProtocolChanged) == 0 {
			// A body-only edit must not rebuild any protocol automaton
			// or re-verify any dependent.
			if specMisses := inc.Stats.Of(pipeline.StageSpec).Misses; specMisses != 0 {
				t.Fatalf("trial %d: body-only edit rebuilt %d protocol automata", trial, specMisses)
			}
		}

		fresh, err := LoadSource(src)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		freshReports, err := fresh.CheckAllConcurrent(4)
		if err != nil {
			t.Fatalf("trial %d: cold check: %v", trial, err)
		}
		for i, r := range inc.Reports {
			if r.String() != freshReports[i].String() {
				t.Fatalf("trial %d class %d: incremental report diverged from cold check\n--- incremental ---\n%s\n--- cold ---\n%s\nsource:\n%s",
					trial, i, r.String(), freshReports[i].String(), src)
			}
		}
	}
}

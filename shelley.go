package shelley

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/budget"
	"github.com/shelley-go/shelley/internal/check"
	"github.com/shelley-go/shelley/internal/hw"
	"github.com/shelley-go/shelley/internal/interp"
	"github.com/shelley-go/shelley/internal/learn"
	"github.com/shelley-go/shelley/internal/model"
	"github.com/shelley-go/shelley/internal/nusmv"
	"github.com/shelley-go/shelley/internal/obs"
	"github.com/shelley-go/shelley/internal/pipeline"
	"github.com/shelley-go/shelley/internal/pyast"
	"github.com/shelley-go/shelley/internal/pyexec"
	"github.com/shelley-go/shelley/internal/pyparse"
	"github.com/shelley-go/shelley/internal/regex"
	"github.com/shelley-go/shelley/internal/viz"
)

// Re-exported result types. Aliases keep the internal packages as the
// single source of truth while making the types usable by importers.
type (
	// Report is the outcome of verifying one class.
	Report = check.Report

	// Diagnostic is one verification finding.
	Diagnostic = check.Diagnostic

	// Kind classifies a diagnostic.
	Kind = check.Kind

	// Instance is a simulated object of an annotated class.
	Instance = interp.Instance

	// System is a simulated composite with live subsystem instances.
	System = interp.System

	// DFA is a deterministic finite automaton.
	DFA = automata.DFA

	// LearnResult is the outcome of an L* run.
	LearnResult = learn.Result

	// Violation is one invalid complete usage found by UsageViolations.
	Violation = check.Violation

	// Option configures Check/FlattenedDFA/UsageViolations (e.g.
	// Precise, check.WithCache).
	Option = check.Option

	// Board is an emulated GPIO board (internal/hw).
	Board = hw.Board

	// Device is a concretely executing instance of a base class: its
	// method bodies run against real emulated pins (internal/pyexec).
	Device = pyexec.Object

	// PipelineStats is the observability snapshot of the module's
	// memoizing analysis cache: per-stage hit/miss counters, entry
	// counts, and build wall-time histograms.
	PipelineStats = pipeline.Stats

	// PipelineStageStats is the per-stage slice of PipelineStats.
	PipelineStageStats = pipeline.StageStats
)

// NewBoard returns an empty emulated GPIO board.
func NewBoard() *Board { return hw.NewBoard() }

// Budget bounds the resources one verification may consume: maximum
// NFA/DFA states per construction, maximum regex size, and maximum
// search nodes per counterexample search. The zero value means
// unlimited. Attach a budget to a context with WithBudget and pass that
// context to CheckContext / CheckAllContext; when a construction would
// exceed the budget the check returns a structured error matching
// ErrBudgetExceeded instead of pinning the goroutine.
type Budget = budget.Limits

// DefaultBudget returns the production limits shelleyd ships with:
// generous enough for every legitimate class in the corpus, small
// enough that a blowup dies in bounded time and memory.
func DefaultBudget() Budget { return budget.Default() }

// WithBudget returns a context carrying the resource budget; every
// budget-aware construction reached through that context enforces it.
func WithBudget(ctx context.Context, b Budget) context.Context {
	return budget.With(ctx, b)
}

// Sentinel errors for classifying verification failures with errors.Is.
var (
	// ErrBudgetExceeded matches every budget-exceeded error, regardless
	// of which resource tripped; errors.As against *budget.Err exposes
	// the resource, operation, and limit.
	ErrBudgetExceeded = budget.ErrExceeded

	// ErrCanceled matches errors from constructions interrupted by
	// context cancellation or deadline expiry.
	ErrCanceled = budget.ErrCanceled
)

// Diagnostic kinds, re-exported.
const (
	KindStructure             = check.KindStructure
	KindUndefinedMethod       = check.KindUndefinedMethod
	KindNonExhaustiveMatch    = check.KindNonExhaustiveMatch
	KindUselessCase           = check.KindUselessCase
	KindInvalidSubsystemUsage = check.KindInvalidSubsystemUsage
	KindClaimFailure          = check.KindClaimFailure
)

// Module is a loaded MicroPython source file: its classes, the registry
// used to resolve subsystem types, and the memoizing analysis cache
// shared by every verification entry point of the module.
type Module struct {
	classes  []*Class
	registry check.Registry

	// cache memoizes the expensive pipeline stages across all classes
	// and all Check/Behavior/SpecDFA/FlattenedDFA calls of the module,
	// including concurrent ones (CheckAllConcurrent workers share it).
	// nil when caching is disabled via SetPipelineCaching(false).
	cache *pipeline.Cache
}

// LoadReader parses and models every class of a MicroPython source
// read from r. name labels the source in error messages (a file path,
// a request id, ...); an empty name leaves errors unlabeled. It is the
// streaming entry point used by servers that receive source in request
// bodies and never touch the filesystem; LoadSource and LoadFile
// delegate to it.
func LoadReader(name string, r io.Reader) (*Module, error) {
	return LoadReaderContext(context.Background(), name, r)
}

// LoadReaderContext is LoadReader with tracing threaded through: the
// parse and modeling of the whole source runs inside a "load.module"
// span (child of ctx's active span) annotated with the source name and
// class count. With no tracer in ctx it is identical to LoadReader.
func LoadReaderContext(ctx context.Context, name string, r io.Reader) (*Module, error) {
	return loadReaderCache(ctx, name, r, pipeline.New())
}

// loadReaderCache is the load path with an explicit pipeline cache:
// every fresh load gets its own empty cache, while Session passes one
// long-lived cache across module generations so artifacts of unchanged
// methods and classes survive an edit.
func loadReaderCache(ctx context.Context, name string, r io.Reader, cache *pipeline.Cache) (_ *Module, err error) {
	_, span := obs.Start(ctx, "load.module", obs.String("source", name))
	defer func() {
		if err != nil {
			span.SetAttr(obs.String("error", err.Error()))
		}
		span.End()
	}()
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, loadErr(name, err)
	}
	ast, err := pyparse.ParseModule(string(b))
	if err != nil {
		return nil, loadErr(name, err)
	}
	m := &Module{registry: check.Registry{}, cache: cache}
	for _, cls := range ast.Classes {
		mc, err := model.FromAST(cls)
		if err != nil {
			return nil, loadErr(name, err)
		}
		m.registry[mc.Name] = mc
		m.classes = append(m.classes, &Class{model: mc, ast: cls, module: m})
	}
	span.SetAttr(obs.Int("classes", len(m.classes)))
	return m, nil
}

// loadErr wraps a load failure, labeling it with the source name when
// one is known.
func loadErr(name string, err error) error {
	if name == "" {
		return fmt.Errorf("shelley: %w", err)
	}
	return fmt.Errorf("shelley: %s: %w", name, err)
}

// LoadSource parses and models every class of a MicroPython source
// string.
func LoadSource(src string) (*Module, error) {
	return LoadReader("", strings.NewReader(src))
}

// LoadFile is LoadReader over a file's contents.
func LoadFile(path string) (*Module, error) {
	return loadFileContext(context.Background(), path)
}

func loadFileContext(ctx context.Context, path string) (*Module, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("shelley: %w", err)
	}
	defer f.Close()
	return LoadReaderContext(ctx, path, f)
}

// LoadFiles loads several files into one module, so composites can
// reference classes defined elsewhere.
func LoadFiles(paths ...string) (*Module, error) {
	return LoadFilesContext(context.Background(), paths...)
}

// LoadFilesContext is LoadFiles with tracing: each file's parse gets
// its own "load.module" span under ctx's active span.
func LoadFilesContext(ctx context.Context, paths ...string) (*Module, error) {
	merged := &Module{registry: check.Registry{}, cache: pipeline.New()}
	for _, p := range paths {
		m, err := loadFileContext(ctx, p)
		if err != nil {
			return nil, err
		}
		for _, c := range m.classes {
			if _, dup := merged.registry[c.Name()]; dup {
				return nil, fmt.Errorf("shelley: class %q defined in more than one file", c.Name())
			}
			c.module = merged
			merged.registry[c.Name()] = c.model
			merged.classes = append(merged.classes, c)
		}
	}
	return merged, nil
}

// PipelineStats returns a snapshot of the module's analysis-cache
// counters: per-stage hits, misses, entry counts, and build wall-time
// histograms. Safe to call concurrently with checking. With caching
// disabled the snapshot is all zeroes.
func (m *Module) PipelineStats() PipelineStats { return m.cache.Stats() }

// ReportPersister is the durable artifact store surface PersistReports
// accepts: a concurrency-safe, best-effort byte store (internal/store's
// Store satisfies it). Get failures must surface as misses and Put must
// never block — the cache treats persistence as strictly optional.
type ReportPersister interface {
	// Get returns the payload persisted under key, or ok=false.
	Get(key string) ([]byte, bool)

	// Put persists payload under key, best-effort.
	Put(key string, payload []byte)
}

// PersistReports attaches a durable read-through/write-behind layer to
// the module's report stage: a whole-class report missing from the
// in-memory cache is looked up in p before being recomputed, and every
// freshly computed report is serialized and handed to p.Put. Reports
// are content-addressed (class fingerprint, analysis mode, budget, and
// subsystem fingerprints), so persisted entries never need
// invalidation, and only successful reports are persisted — errors
// always recompute. Attach before serving traffic; a nil p detaches.
// With caching disabled the call is a no-op.
func (m *Module) PersistReports(p ReportPersister) {
	m.cache.Persist(pipeline.StageReport, p, check.ReportCodec())
}

// SetPipelineCaching turns the module's memoization cache on or off.
// Turning it on installs a fresh (empty) cache; turning it off makes
// every subsequent analysis recompute from scratch — the differential
// tests use this to compare cached and uncached runs. Not safe to call
// concurrently with checking.
func (m *Module) SetPipelineCaching(on bool) {
	if on {
		m.cache = pipeline.New()
	} else {
		m.cache = nil
	}
}

// Classes returns the module's classes in source order.
func (m *Module) Classes() []*Class { return append([]*Class(nil), m.classes...) }

// Class returns the named class.
func (m *Module) Class(name string) (*Class, bool) {
	for _, c := range m.classes {
		if c.Name() == name {
			return c, true
		}
	}
	return nil, false
}

// CheckAll verifies every class of the module, in source order.
func (m *Module) CheckAll() ([]*Report, error) {
	out := make([]*Report, 0, len(m.classes))
	for _, c := range m.classes {
		r, err := c.Check()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Class is the Shelley model of one annotated class, bound to its
// module for subsystem resolution.
type Class struct {
	model  *model.Class
	ast    *pyast.ClassDef
	module *Module
}

// Name returns the class name.
func (c *Class) Name() string { return c.model.Name }

// Operations returns the operation names in source order.
func (c *Class) Operations() []string { return c.model.OperationNames() }

// Subsystems returns the declared subsystem fields in declaration
// order; empty for base classes.
func (c *Class) Subsystems() []string {
	return append([]string(nil), c.model.SubsystemNames...)
}

// Claims returns the @claim formulas in source order.
func (c *Class) Claims() []string {
	out := make([]string, len(c.model.Claims))
	for i, cl := range c.model.Claims {
		out[i] = cl.Formula
	}
	return out
}

// Check runs the full verification pipeline on the class. Options:
// shelley.Precise switches to exit-aware flattening (see DESIGN.md §6).
// Results are memoized in the module's pipeline cache; later options
// win, so callers can override the cache per call via check.WithCache.
func (c *Class) Check(opts ...check.Option) (*Report, error) {
	return check.Check(c.model, c.module.registry, c.withModuleCache(opts)...)
}

// CheckContext is Check with a context threaded through for
// cancellation-free tracing: the verification runs inside a
// "check.class" span (child of ctx's active span) and every pipeline
// stage it triggers nests under it. Identical to Check when ctx
// carries no tracer.
func (c *Class) CheckContext(ctx context.Context, opts ...check.Option) (*Report, error) {
	return check.CheckContext(ctx, c.model, c.module.registry, c.withModuleCache(opts)...)
}

// withModuleCache prepends the module cache option so user-passed
// options can still override it.
func (c *Class) withModuleCache(opts []check.Option) []check.Option {
	return append([]check.Option{check.WithCache(c.module.cache)}, opts...)
}

// Precise is re-exported from the checker: exit-aware flattening that
// removes the union-level over-approximation of the paper's model.
func Precise() check.Option { return check.Precise() }

// Behavior returns the inferred behavior of an operation (§3.2) as a
// regular expression in the paper's concrete syntax, e.g.
// "(a . (b . 0 + c))* + (a . (b . 0 + c))* . a . b".
func (c *Class) Behavior(op string) (string, error) {
	o := c.model.Operation(op)
	if o == nil {
		return "", fmt.Errorf("shelley: class %s has no operation %q", c.Name(), op)
	}
	return c.module.cache.Infer(context.Background(), o.Method.Program).String(), nil
}

// BehaviorSimplified is Behavior after language-preserving
// normalization.
func (c *Class) BehaviorSimplified(op string) (string, error) {
	o := c.model.Operation(op)
	if o == nil {
		return "", fmt.Errorf("shelley: class %s has no operation %q", c.Name(), op)
	}
	return c.module.cache.InferSimplified(context.Background(), o.Method.Program).String(), nil
}

// ProtocolDiagram renders the Fig. 1-style usage diagram as Graphviz
// DOT.
func (c *Class) ProtocolDiagram() string { return viz.ProtocolDOT(c.model) }

// DependencyDiagram renders the §3.1 method dependency graph (Fig. 3)
// as Graphviz DOT.
func (c *Class) DependencyDiagram() (string, error) {
	g, err := c.model.DepGraph()
	if err != nil {
		return "", fmt.Errorf("shelley: %w", err)
	}
	return viz.DepGraphDOT(c.Name(), c.model, g), nil
}

// ProtocolRegex returns the class's whole usage language as a regular
// expression (the protocol automaton converted back through state
// elimination) — a compact, printable form of Corollary 1 applied to
// the class itself.
func (c *Class) ProtocolRegex() (string, error) {
	d, err := c.specDFA("")
	if err != nil {
		return "", err
	}
	return regex.Simplify(d.Minimize().ToRegex()).String(), nil
}

// specDFA is the cached protocol automaton, shared read-only with the
// checker (same StageSpec key: the protocol fingerprint, so body-only
// edits reuse it). The result must not be mutated; public boundaries
// clone.
func (c *Class) specDFA(prefix string) (*DFA, error) {
	return pipeline.Memo(c.module.cache, pipeline.StageSpec,
		pipeline.SpecKey(c.model.ProtocolFingerprint(), prefix),
		func() (*DFA, error) { return c.model.SpecDFA(prefix) })
}

// SpecDFA returns the class's usage-protocol automaton; operation names
// are prefixed with prefix+"." when prefix is non-empty. The caller
// owns the returned automaton.
func (c *Class) SpecDFA(prefix string) (*DFA, error) {
	d, err := c.specDFA(prefix)
	if err != nil {
		return nil, err
	}
	if c.module.cache != nil {
		d = d.Clone()
	}
	return d, nil
}

// NewInstance creates a simulated object of the class.
func (c *Class) NewInstance(opts ...interp.Option) *Instance {
	return interp.NewInstance(c.model, opts...)
}

// NewSystem instantiates the composite class with live subsystem
// instances, resolving subsystem types through the module.
func (c *Class) NewSystem(opts ...interp.Option) (*System, error) {
	return interp.NewSystem(c.model, c.module.registry, opts...)
}

// UsageViolations enumerates up to max distinct invalid complete usages
// per subsystem, shortest first.
func (c *Class) UsageViolations(max int, opts ...check.Option) ([]Violation, error) {
	return check.UsageViolations(c.model, c.module.registry, max, c.withModuleCache(opts)...)
}

// ReplayFlat drives the class's subsystem instances directly with a
// flattened qualified trace (as found in checker counterexamples) and
// returns the first protocol error, or an error when subsystems are
// left in non-final states. A nil result means the trace is a clean,
// complete usage.
func (c *Class) ReplayFlat(trace []string, opts ...interp.Option) error {
	return interp.ReplayFlat(c.model, c.module.registry, trace, opts...)
}

// NewDevice instantiates the class as a concretely executing device on
// the board: __init__ builds real emulated pins, method bodies evaluate
// pin reads, and each call returns the continuation the device actually
// took. Only base classes (whose bodies drive pins, not subsystems) can
// run this way.
func (c *Class) NewDevice(board *Board) (*Device, error) {
	if len(c.model.SubsystemNames) > 0 {
		return nil, fmt.Errorf("shelley: %s is a composite; NewDevice runs base classes (use NewSystem)", c.Name())
	}
	return pyexec.NewObject(c.ast, pyexec.NewEnv(board))
}

// FlattenedDFA returns the class's behavior automaton over subsystem
// operations (for composites) or its own protocol automaton (for base
// classes) — the object claims are verified against.
func (c *Class) FlattenedDFA(opts ...check.Option) (*DFA, error) {
	return check.FlattenedDFA(c.model, c.module.registry, c.withModuleCache(opts)...)
}

// ExportNuSMV renders the class's model as a NuSMV module, the backend
// path the paper's implementation delegates model checking to (§5).
// Claims are included as LTLSPEC properties via the standard
// LTLf-to-LTL encoding.
func (c *Class) ExportNuSMV() (string, error) {
	d, err := c.FlattenedDFA()
	if err != nil {
		return "", err
	}
	return nusmv.ExportClaims(c.Name(), d, c.Claims())
}

// LearnKV is Learn with the Kearns–Vazirani classification-tree
// algorithm instead of L*.
func (c *Class) LearnKV() (*LearnResult, error) {
	depth := 2*len(c.model.Operations) + 1
	teacher := learn.NewInstanceTeacher(c.model, depth)
	return learn.KearnsVazirani(teacher, learn.Config{})
}

// RunTrace reports whether the call sequence is a valid complete usage
// of the class under the specification (angelic) semantics — the
// membership oracle used by learning and conformance testing.
func (c *Class) RunTrace(trace []string) bool {
	return interp.Run(c.model, trace, interp.WithAngelic())
}

// ConformanceSuite generates the W-method conformance test suite of the
// class's protocol: any implementation with at most extraStates more
// states than the specification that passes every suite trace implements
// exactly the specified protocol. Use together with NewInstance /
// NewDevice to test implementations against the model.
func (c *Class) ConformanceSuite(extraStates int) ([][]string, error) {
	spec, err := c.specDFA("")
	if err != nil {
		return nil, err
	}
	return learn.WMethodSuite(spec.Minimize(), extraStates), nil
}

// Learn runs L* against a simulated instance of the class and returns
// the learned protocol automaton together with query statistics. The
// result is equivalent to SpecDFA("") — dynamic model inference agrees
// with the static extraction.
func (c *Class) Learn() (*LearnResult, error) {
	depth := 2*len(c.model.Operations) + 1
	teacher := learn.NewInstanceTeacher(c.model, depth)
	return learn.LStar(teacher, learn.Config{})
}

// Names returns the class names in the module, sorted; a convenience
// for tools.
func (m *Module) Names() []string {
	out := make([]string, 0, len(m.classes))
	for _, c := range m.classes {
		out = append(out, c.Name())
	}
	sort.Strings(out)
	return out
}

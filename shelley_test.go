package shelley

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/automata"
	"github.com/shelley-go/shelley/internal/regex"
)

// thin wrappers keep the facade test readable.
func regexParse(src string) (regex.Regex, error)  { return regex.Parse(src) }
func automataCompile(r regex.Regex) *automata.DFA { return automata.CompileMinimal(r) }
func automataEquivalent(a, b *automata.DFA) bool  { return automata.Equivalent(a, b) }

func loadPaper(t *testing.T) *Module {
	t.Helper()
	m, err := LoadFiles(
		filepath.Join("testdata", "valve.py"),
		filepath.Join("testdata", "badsector.py"),
		filepath.Join("testdata", "goodsector.py"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLoadFileAndClassLookup(t *testing.T) {
	m, err := LoadFile(filepath.Join("testdata", "valve.py"))
	if err != nil {
		t.Fatal(err)
	}
	valve, ok := m.Class("Valve")
	if !ok {
		t.Fatal("Valve not found")
	}
	if got := valve.Operations(); !reflect.DeepEqual(got, []string{"test", "open", "close", "clean"}) {
		t.Errorf("operations = %v", got)
	}
	if len(valve.Subsystems()) != 0 || len(valve.Claims()) != 0 {
		t.Error("Valve is a base class without claims")
	}
	if _, ok := m.Class("Nope"); ok {
		t.Error("lookup of missing class should fail")
	}
}

func TestLoadFilesMergesRegistries(t *testing.T) {
	m := loadPaper(t)
	if got := m.Names(); !reflect.DeepEqual(got, []string{"BadSector", "GoodSector", "Valve"}) {
		t.Errorf("names = %v", got)
	}
	bad, _ := m.Class("BadSector")
	report, err := bad.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Error("BadSector must fail verification")
	}
	good, _ := m.Class("GoodSector")
	report, err = good.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Errorf("GoodSector must verify:\n%s", report)
	}
}

func TestLoadFilesRejectsDuplicates(t *testing.T) {
	p := filepath.Join("testdata", "valve.py")
	if _, err := LoadFiles(p, p); err == nil {
		t.Error("duplicate class across files should be rejected")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadFile(filepath.Join("testdata", "missing.py")); err == nil {
		t.Error("missing file should error")
	}
	if _, err := LoadSource("class C\n"); err == nil {
		t.Error("syntax error should surface")
	}
	if _, err := LoadSource("@sys\nclass C:\n    pass\n"); err == nil {
		t.Error("class without operations should surface a model error")
	}
}

func TestCheckAll(t *testing.T) {
	m := loadPaper(t)
	reports, err := m.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	byClass := map[string]bool{}
	for _, r := range reports {
		byClass[r.Class] = r.OK()
	}
	if !byClass["Valve"] || byClass["BadSector"] || !byClass["GoodSector"] {
		t.Errorf("verdicts = %v", byClass)
	}
}

func TestBehaviorStrings(t *testing.T) {
	m := loadPaper(t)
	bad, _ := m.Class("BadSector")
	raw, err := bad.Behavior("open_a")
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"a.test", "a.open", "a.clean"} {
		if !strings.Contains(raw, sub) {
			t.Errorf("behavior %q missing %q", raw, sub)
		}
	}
	simp, err := bad.BehaviorSimplified("open_a")
	if err != nil {
		t.Fatal(err)
	}
	if want := "a.test . a.clean + a.test . a.open"; simp != want {
		t.Errorf("simplified = %q, want %q", simp, want)
	}
	if _, err := bad.Behavior("nope"); err == nil {
		t.Error("behavior of missing op should error")
	}
	if _, err := bad.BehaviorSimplified("nope"); err == nil {
		t.Error("simplified behavior of missing op should error")
	}
}

func TestDiagrams(t *testing.T) {
	m := loadPaper(t)
	valve, _ := m.Class("Valve")
	if dot := valve.ProtocolDiagram(); !strings.Contains(dot, `"test" -> "open"`) {
		t.Errorf("protocol diagram:\n%s", dot)
	}
	dep, err := valve.DependencyDiagram()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dep, "shape=box") {
		t.Errorf("dependency diagram:\n%s", dep)
	}
}

func TestSpecDFAFacade(t *testing.T) {
	m := loadPaper(t)
	valve, _ := m.Class("Valve")
	d, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepts([]string{"test", "open", "close"}) {
		t.Error("spec should accept a full cycle")
	}
}

func TestSimulationFacade(t *testing.T) {
	m := loadPaper(t)
	good, _ := m.Class("GoodSector")
	sys, err := good.NewSystem()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Invoke("run"); err != nil {
		t.Fatal(err)
	}
	if !sys.CanStop() {
		t.Error("GoodSector run should end stoppable")
	}

	valve, _ := m.Class("Valve")
	inst := valve.NewInstance()
	if _, err := inst.Call("test"); err != nil {
		t.Fatal(err)
	}
}

func TestLearnFacade(t *testing.T) {
	m := loadPaper(t)
	valve, _ := m.Class("Valve")
	res, err := valve.Learn()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	if res.DFA.NumStates() != spec.Minimize().NumStates() {
		t.Errorf("learned %d states, want %d", res.DFA.NumStates(), spec.Minimize().NumStates())
	}
	if res.MembershipQueries == 0 {
		t.Error("query stats missing")
	}
}

func TestDeviceFacade(t *testing.T) {
	m := loadPaper(t)
	valve, _ := m.Class("Valve")
	board := NewBoard()
	dev, err := valve.NewDevice(board)
	if err != nil {
		t.Fatal(err)
	}
	board.SetInput(29, true) // sensor says openable
	next, _, err := dev.Call("test")
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != 1 || next[0] != "open" {
		t.Errorf("next = %v", next)
	}
	if _, _, err := dev.Call("open"); err != nil {
		t.Fatal(err)
	}
	high := board.HighPins()
	if len(high) != 2 || high[0] != 27 {
		t.Errorf("pins = %v, want control pin 27 high", high)
	}
	// Composites cannot be devices.
	bad, _ := m.Class("BadSector")
	if _, err := bad.NewDevice(board); err == nil {
		t.Error("composite NewDevice should error")
	}
}

func TestUsageViolationsFacade(t *testing.T) {
	m := loadPaper(t)
	bad, _ := m.Class("BadSector")
	vs, err := bad.UsageViolations(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 || vs[0].Subsystem != "a" {
		t.Errorf("violations = %+v", vs)
	}
	// Every reported violation replays as a runtime failure.
	for _, v := range vs {
		if err := bad.ReplayFlat(v.Trace); err == nil {
			t.Errorf("violation %v replayed cleanly", v.Trace)
		}
	}
}

func TestProtocolRegexFacade(t *testing.T) {
	m := loadPaper(t)
	valve, _ := m.Class("Valve")
	src, err := valve.ProtocolRegex()
	if err != nil {
		t.Fatal(err)
	}
	// The regex must denote exactly the spec language.
	r, err := regexParse(src)
	if err != nil {
		t.Fatalf("ProtocolRegex output %q does not parse: %v", src, err)
	}
	spec, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	back := automataCompile(r)
	if !automataEquivalent(back, spec) {
		t.Errorf("ProtocolRegex %q does not match the spec language", src)
	}
}

func TestConformanceSuiteFacade(t *testing.T) {
	m := loadPaper(t)
	valve, _ := m.Class("Valve")
	suite, err := valve.ConformanceSuite(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) == 0 {
		t.Fatal("empty suite")
	}
	spec, err := valve.SpecDFA("")
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range suite {
		if valve.RunTrace(tr) != spec.Accepts(tr) {
			t.Fatalf("simulator disagrees with spec on %v", tr)
		}
	}
}

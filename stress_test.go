package shelley

import (
	"fmt"
	"strings"
	"testing"

	"github.com/shelley-go/shelley/internal/interp"
)

// Stress tests: large synthetic systems through the whole pipeline.
// They guard against accidental exponential blowups in parsing,
// flattening, and counterexample search.

// syntheticFleet builds a composite driving n devices, each with a
// 3-operation protocol; each composite op runs one device's full cycle.
func syntheticFleet(n int) string {
	var b strings.Builder
	b.WriteString(`@sys
class Unit:
    @op_initial
    def up(self):
        return ["work", "down"]

    @op
    def work(self):
        return ["work", "down"]

    @op_final
    def down(self):
        return ["up"]

`)
	subs := make([]string, n)
	for i := range subs {
		subs[i] = fmt.Sprintf("%q", dev(i))
	}
	fmt.Fprintf(&b, "@sys([%s])\nclass Fleet:\n    def __init__(self):\n", strings.Join(subs, ", "))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "        self.%s = Unit()\n", dev(i))
	}
	b.WriteString("\n")
	for i := 0; i < n; i++ {
		decorator := "@op"
		switch {
		case n == 1:
			decorator = "@op_initial_final"
		case i == 0:
			decorator = "@op_initial"
		case i == n-1:
			decorator = "@op_final"
		}
		next := "[]"
		if i < n-1 {
			next = fmt.Sprintf("[\"cycle%d\"]", i+1)
		}
		fmt.Fprintf(&b, "    %s\n    def cycle%d(self):\n", decorator, i)
		fmt.Fprintf(&b, "        self.%s.up()\n", dev(i))
		fmt.Fprintf(&b, "        while self.more():\n            self.%s.work()\n", dev(i))
		fmt.Fprintf(&b, "        self.%s.down()\n", dev(i))
		fmt.Fprintf(&b, "        return %s\n\n", next)
	}
	return b.String()
}

func dev(i int) string { return fmt.Sprintf("d%02d", i) }

func TestStressFleetVerifies(t *testing.T) {
	for _, n := range []int{1, 4, 16, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			m, err := LoadSource(syntheticFleet(n))
			if err != nil {
				t.Fatal(err)
			}
			fleet, ok := m.Class("Fleet")
			if !ok {
				t.Fatal("Fleet missing")
			}
			report, err := fleet.Check()
			if err != nil {
				t.Fatal(err)
			}
			if !report.OK() {
				t.Fatalf("fleet(%d) should verify:\n%s", n, report)
			}
		})
	}
}

func TestStressFleetPreciseVerifies(t *testing.T) {
	m, err := LoadSource(syntheticFleet(16))
	if err != nil {
		t.Fatal(err)
	}
	fleet, _ := m.Class("Fleet")
	report, err := fleet.Check(Precise())
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("precise fleet should verify:\n%s", report)
	}
}

func TestStressFleetCounterexampleStillShort(t *testing.T) {
	// Break one device's cycle deep in the chain and check the
	// counterexample search stays tractable and the witness minimal.
	src := syntheticFleet(12)
	src = strings.Replace(src,
		"        self.d11.down()\n        return []\n",
		"        return []\n", 1)
	m, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	fleet, _ := m.Class("Fleet")
	report, err := fleet.Check()
	if err != nil {
		t.Fatal(err)
	}
	var usage *Diagnostic
	for i := range report.Diagnostics {
		if report.Diagnostics[i].Kind == KindInvalidSubsystemUsage {
			usage = &report.Diagnostics[i]
		}
	}
	if usage == nil {
		t.Fatalf("expected usage violation:\n%s", report)
	}
	// Minimal witness: each healthy device does up+down (2 events ×11),
	// the broken one only up (1 event).
	if got, want := len(usage.Counterexample), 2*11+1; got != want {
		t.Errorf("counterexample length = %d, want %d: %v", got, want, usage.Counterexample)
	}
	if !strings.Contains(usage.Message, "Unit 'd11': >up< (not final)") {
		t.Errorf("message:\n%s", usage.Message)
	}
}

func TestStressDeeplyNestedBodies(t *testing.T) {
	// 12 nested loops+ifs in one op body.
	var body strings.Builder
	indent := "        "
	for i := 0; i < 12; i++ {
		body.WriteString(indent + "while self.go():\n")
		indent += "    "
		body.WriteString(indent + "if self.hot():\n")
		indent += "    "
		body.WriteString(indent + "self.d.work()\n")
		// Unindent the if's body, stay in the while for the next level.
	}
	src := `@sys
class Dev:
    @op_initial_final
    def work(self):
        return ["work"]

@sys(["d"])
class Nest:
    def __init__(self):
        self.d = Dev()

    @op_initial_final
    def go(self):
` + body.String() + `        return []
`
	m, err := LoadSource(src)
	if err != nil {
		t.Fatal(err)
	}
	nest, _ := m.Class("Nest")
	report, err := nest.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("nest should verify:\n%s", report)
	}
}

func TestStressSimulateFleet(t *testing.T) {
	m, err := LoadSource(syntheticFleet(8))
	if err != nil {
		t.Fatal(err)
	}
	fleet, _ := m.Class("Fleet")
	sys, err := fleet.NewSystem(interp.WithChooser(interp.NewRandomChoice(5)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := sys.Invoke(fmt.Sprintf("cycle%d", i)); err != nil {
			t.Fatalf("cycle%d: %v", i, err)
		}
	}
	if !sys.CanStop() {
		t.Errorf("dangling: %v", sys.DanglingSubsystems())
	}
}

# Listing 2.2 of the paper: a sector that uses two valves incorrectly.
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class BadSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def open_a(self):
        match self.a.test():
            case ["open"]:
                self.a.open()
                return ["open_b"]
            case ["clean"]:
                self.a.clean()
                print("a failed")
                return []

    @op_final
    def open_b(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                self.a.close()
                self.b.close()
                return []
            case ["clean"]:
                self.b.clean()
                print("b failed")
                self.a.close()
                return []

# A corrected sector: valve b is opened before valve a (satisfying the
# temporal claim), every valve usage ends in a final operation, and the
# whole irrigation step happens in a single composite operation.
@claim("(!a.open) W b.open")
@sys(["a", "b"])
class GoodSector:
    def __init__(self):
        self.a = Valve()
        self.b = Valve()

    @op_initial_final
    def run(self):
        match self.b.test():
            case ["open"]:
                self.b.open()
                match self.a.test():
                    case ["open"]:
                        self.a.open()
                        self.a.close()
                        self.b.close()
                        return []
                    case ["clean"]:
                        self.a.clean()
                        self.b.close()
                        return []
            case ["clean"]:
                self.b.clean()
                return []

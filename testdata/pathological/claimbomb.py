# Pathological: claim bomb. The behavior itself is tiny — any mix of
# t.a and t.b — but the claim's negation F (t.a & X^12 t.a) is the
# classic LTLf counting formula: the progression automaton must track
# every pending 12-step obligation, so its state space is 2^12 sets of
# obligations. Stresses the LTLf compile budget (states and DNF
# clauses) rather than the behavior pipeline.

@sys
class Tok:
    def __init__(self):
        self.pin = Pin(4, OUT)

    @op_initial_final
    def a(self):
        self.pin.on()
        return ["a", "b"]

    @op_initial_final
    def b(self):
        self.pin.off()
        return ["a", "b"]


@claim("!(F (t.a & X X X X X X X X X X X X t.a))")
@sys(["t"])
class ClaimBomb:
    def __init__(self):
        self.t = Tok()

    @op_initial_final
    def run(self):
        while self.more():
            if self.flip():
                self.t.a()
            else:
                self.t.b()
        return []

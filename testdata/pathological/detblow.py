# Pathological: determinization bomb. The behavior of `run` is
# (a+b)* . a . (a+b)^18 over the token subsystem — the textbook NFA
# whose minimal DFA has 2^19 states (it must remember the last 19
# symbols). Subset construction and derivative compilation both
# explode past the production default MaxDFAStates; under a resource
# budget the check returns a structured budget error instead of
# pinning a worker.

@sys
class Tok:
    def __init__(self):
        self.pin = Pin(1, OUT)

    @op_initial_final
    def a(self):
        self.pin.on()
        return ["a", "b"]

    @op_initial_final
    def b(self):
        self.pin.off()
        return ["a", "b"]


@sys(["t"])
class DetBlow:
    def __init__(self):
        self.t = Tok()

    @op_initial_final
    def run(self):
        while self.more():
            if self.flip():
                self.t.a()
            else:
                self.t.b()
        self.t.a()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        return []

# Pathological: loop tower. A four-deep nest of while loops feeds a
# counting tail a . (a+b)^11, so the inferred regex is a tower of
# nested stars whose determinization still has to remember a 12-symbol
# window — at least 2^12 states. Stresses the derivative/determinize
# state budgets through deeply nested iteration rather than sheer
# width.

@sys
class Tok:
    def __init__(self):
        self.pin = Pin(2, OUT)

    @op_initial_final
    def a(self):
        self.pin.on()
        return ["a", "b"]

    @op_initial_final
    def b(self):
        self.pin.off()
        return ["a", "b"]


@sys(["t"])
class LoopTower:
    def __init__(self):
        self.t = Tok()

    @op_initial_final
    def climb(self):
        while self.l0():
            self.t.a()
            while self.l1():
                self.t.b()
                while self.l2():
                    self.t.a()
                    while self.l3():
                        if self.flip():
                            self.t.a()
                        else:
                            self.t.b()
        self.t.a()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        if self.flip():
            self.t.a()
        else:
            self.t.b()
        return []

# Pathological: wide composite product. Six Cell subsystems give the
# flat automaton a 12-symbol alphabet and three stacked claims multiply
# the LTLf product on top; the counting core c1.a . (c1.a+c1.b)^11
# after a free mix of c1 symbols forces the determinized behavior to
# track a 12-symbol window — at least 2^12 states over the wide
# alphabet.

@sys
class Cell:
    def __init__(self):
        self.pin = Pin(3, OUT)

    @op_initial_final
    def a(self):
        self.pin.on()
        return ["a", "b"]

    @op_initial_final
    def b(self):
        self.pin.off()
        return ["a", "b"]


@claim("G (c2.a -> F c2.b)")
@claim("G (c3.a -> F c3.b)")
@claim("G (c4.a -> F c4.b)")
@sys(["c1", "c2", "c3", "c4", "c5", "c6"])
class WideSys:
    def __init__(self):
        self.c1 = Cell()
        self.c2 = Cell()
        self.c3 = Cell()
        self.c4 = Cell()
        self.c5 = Cell()
        self.c6 = Cell()

    @op_initial_final
    def sweep(self):
        self.c2.a()
        self.c2.b()
        self.c3.a()
        self.c3.b()
        self.c4.a()
        self.c4.b()
        self.c5.a()
        self.c5.b()
        self.c6.a()
        self.c6.b()
        while self.more():
            if self.flip():
                self.c1.a()
            else:
                self.c1.b()
        self.c1.a()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        if self.flip():
            self.c1.a()
        else:
            self.c1.b()
        return []

# Listing 3.1 of the paper: class Sector with code elided to only show
# returns per method (used for the method-dependency graph of Fig. 3).
class Sector:
    def open_a(self):
        if ready():
            return ["close_a", "open_b"]
        else:
            return ["clean_a"]

    def clean_a(self):
        return ["open_a"]

    def close_a(self):
        pass
        return ["open_a"]

    def open_b(self):
        if done():
            return []
        else:
            return []

# A larger integration scenario: a battery-powered thermostat node.
# The radio must be woken before sending and slept afterwards; the
# sensor must be started before sampling and stopped afterwards; the
# heater must never be left running. The Thermostat composite
# orchestrates all three and carries three temporal claims.

@sys
class Radio:
    def __init__(self):
        self.en = Pin(4, OUT)

    @op_initial
    def wake(self):
        self.en.on()
        return ["send", "sleep"]

    @op
    def send(self):
        return ["send", "sleep"]

    @op_final
    def sleep(self):
        self.en.off()
        return ["wake"]


@sys
class Sensor:
    def __init__(self):
        self.en = Pin(5, OUT)

    @op_initial
    def start(self):
        self.en.on()
        return ["sample"]

    @op
    def sample(self):
        if self.ok():
            return ["sample", "stop"]
        else:
            return ["stop"]

    @op_final
    def stop(self):
        self.en.off()
        return ["start"]


@sys
class Heater:
    def __init__(self):
        self.relay = Pin(6, OUT)

    @op_initial
    def on(self):
        self.relay.on()
        return ["off"]

    @op_final
    def off(self):
        self.relay.off()
        return ["on"]


@claim("(!h.on) W s.sample")
@claim("G (r.send -> F r.sleep)")
@sys(["s", "h", "r"])
class Thermostat:
    def __init__(self):
        self.s = Sensor()
        self.h = Heater()
        self.r = Radio()

    @op_initial
    def measure(self):
        self.s.start()
        self.s.sample()
        self.s.stop()
        return ["heat", "report", "idle"]

    @op
    def heat(self):
        self.h.on()
        self.h.off()
        return ["report", "idle"]

    @op
    def report(self):
        self.r.wake()
        while self.retry():
            self.r.send()
        self.r.send()
        self.r.sleep()
        return ["idle"]

    @op_final
    def idle(self):
        return ["measure"]

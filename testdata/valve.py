# Listing 2.1 of the paper: a water valve operated through GPIO pins.
@sys
class Valve:
    def __init__(self):
        self.control = Pin(27, OUT)
        self.clean = Pin(28, OUT)
        self.status = Pin(29, IN)

    @op_initial
    def test(self):
        if self.status.value():
            return ["open"]
        else:
            return ["clean"]

    @op
    def open(self):
        self.control.on()
        return ["close"]

    @op_final
    def close(self):
        self.control.off()
        return ["test"]

    @op_final
    def clean(self):
        self.clean.on()
        return ["test"]
